"""Closest Truss Community search — Algorithm 1 of the paper.

Given the DDI graph G and the suggested drugs Q, find a connected p-truss
containing Q with large p and small query distance (a proxy for diameter,
following Huang et al. [22]):

1. truss-decompose G,
2. compute a Steiner tree T_s over Q using truss distances,
3. greedily grow T_s with adjacent edges whose truss number is at least the
   minimum truss number of T_s, up to a size budget (the "bulk" phase),
4. truss-decompose the bulked subgraph and keep the maximal connected
   p-truss containing Q with the largest feasible p,
5. iteratively delete the nodes furthest from Q while maintaining the
   p-truss property, tracking the best (smallest query-distance) candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .graph import Edge, Graph, edge_key
from .shortest import (
    bfs_distances,
    diameter,
    graph_query_distance,
    is_connected_subset,
)
from .steiner import steiner_tree, truss_distance_weight
from .truss import peel_to_p_truss, truss_decomposition


@dataclass
class CTCResult:
    """Output of the closest-truss-community search.

    Attributes:
        nodes: community members (includes every query node on success).
        trussness: the p of the p-truss condition the community satisfies.
        diameter: diameter of the induced subgraph.
        query_distance: max distance from any member to the query set.
        edges: edges of the induced subgraph.
    """

    nodes: List[int]
    trussness: int
    diameter: float
    query_distance: float
    edges: List[Edge] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.nodes)


def _induced_edges(graph: Graph, nodes: Set[int]) -> List[Edge]:
    return [
        (u, v)
        for u, v in graph.edges()
        if u in nodes and v in nodes
    ]


def _component_with_query(graph: Graph, nodes: Set[int], query: Sequence[int]) -> Optional[Set[int]]:
    """Connected component (within ``nodes``) containing all query nodes."""
    query_set = set(query)
    if not query_set <= nodes:
        return None
    start = next(iter(query_set))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbor in graph.neighbors(node):
            if neighbor in nodes and neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    if query_set <= seen:
        return seen
    return None


def closest_truss_community(
    graph: Graph,
    query: Sequence[int],
    size_budget: int = 60,
) -> Optional[CTCResult]:
    """Run Algorithm 1; returns None when the query is not connectable.

    Args:
        graph: the (unsigned) DDI graph.
        query: suggested drug ids Q.
        size_budget: n0 of Algorithm 1 — bulk growth stops at this many edges
            beyond the Steiner tree.
    """
    query = sorted(set(query))
    if not query:
        raise ValueError("query must contain at least one drug")
    for q in query:
        if not 0 <= q < graph.num_nodes:
            raise IndexError(f"query node {q} out of range")

    if len(query) == 1 and graph.degree(query[0]) == 0:
        # An isolated suggested drug explains itself: trivial community.
        return CTCResult(nodes=list(query), trussness=2, diameter=0.0, query_distance=0.0)

    # Line 1: truss decomposition on G.
    truss = truss_decomposition(graph)
    max_truss = max(truss.values(), default=2)

    # Line 2: Steiner tree under truss distance.
    try:
        tree = steiner_tree(graph, query, truss_distance_weight(truss, max_truss))
    except ValueError:
        return None

    tree_edges = list(tree.edges())
    if tree_edges:
        p_floor = min(truss[edge_key(u, v)] for u, v in tree_edges)
    else:
        p_floor = 2

    # Lines 3-7: bulk the tree with adjacent edges of truss >= p_floor.
    nodes: Set[int] = set(query)
    for u, v in tree_edges:
        nodes.add(u)
        nodes.add(v)
    grown: Set[Edge] = set(tree_edges)
    frontier = list(nodes)
    while frontier and len(grown) < size_budget:
        node = frontier.pop(0)
        for neighbor in sorted(graph.neighbors(node)):
            edge = edge_key(node, neighbor)
            if edge in grown:
                continue
            if truss.get(edge, 2) >= p_floor:
                grown.add(edge)
                if neighbor not in nodes:
                    nodes.add(neighbor)
                    frontier.append(neighbor)
                if len(grown) >= size_budget:
                    break
    # Include all edges among collected nodes for the truss check.
    bulk = Graph(graph.num_nodes)
    for u, v in _induced_edges(graph, nodes):
        bulk.add_edge(u, v)

    # Lines 8-9: decompose the bulked graph; keep the best connected p-truss
    # containing Q.
    bulk_truss = truss_decomposition(bulk)
    best_p = 2
    for p in range(max(bulk_truss.values(), default=2), 1, -1):
        keep = {e for e, t in bulk_truss.items() if t >= p}
        sub = Graph(graph.num_nodes)
        for u, v in keep:
            sub.add_edge(u, v)
        members = _component_with_query(sub, {n for e in keep for n in e} | set(query), query)
        if members is not None and _covers_query_links(sub, members, query):
            best_p = p
            break

    current = peel_to_p_truss(bulk, best_p)
    members = _component_with_query(
        current, {n for n in range(graph.num_nodes) if current.degree(n) > 0} | set(query), query
    )
    if members is None:
        members = set(query) | {n for e in _induced_edges(bulk, nodes) for n in e}
        current = bulk
        best_p = 2
        members = _component_with_query(current, members, query)
        if members is None:
            return None

    # Lines 10-14: shrink by removing furthest nodes while keeping Q connected.
    best = _snapshot(graph, current, members, query, best_p)
    while True:
        distances = _query_distances(current, members, query)
        if not distances:
            break
        far = max(distances.values())
        if far <= 0:
            break
        to_delete = [n for n, d in distances.items() if d == far and n not in query]
        if not to_delete:
            break
        candidate_members = members - set(to_delete)
        candidate = Graph(graph.num_nodes)
        for u, v in _induced_edges(current, candidate_members):
            candidate.add_edge(u, v)
        candidate = peel_to_p_truss(candidate, best_p)
        surviving = _component_with_query(candidate, candidate_members, query)
        if surviving is None or not is_connected_subset(candidate, sorted(surviving)):
            break
        members = surviving
        current = candidate
        snapshot = _snapshot(graph, current, members, query, best_p)
        if snapshot.query_distance <= best.query_distance:
            best = snapshot

    return best


def _covers_query_links(graph: Graph, members: Set[int], query: Sequence[int]) -> bool:
    return set(query) <= members


def _query_distances(graph: Graph, members: Set[int], query: Sequence[int]) -> Dict[int, float]:
    sub, mapping = graph.subgraph(sorted(members))
    inverse = {new: old for old, new in mapping.items()}
    distances: Dict[int, float] = {}
    per_query: List[List[float]] = []
    for q in query:
        if q not in mapping:
            return {}
        per_query.append(bfs_distances(sub, mapping[q]))
    for new_id in range(sub.num_nodes):
        distances[inverse[new_id]] = max(dist[new_id] for dist in per_query)
    return distances


def _snapshot(
    original: Graph, current: Graph, members: Set[int], query: Sequence[int], p: int
) -> CTCResult:
    member_list = sorted(members)
    edges = _induced_edges(current, members)
    return CTCResult(
        nodes=member_list,
        trussness=p,
        diameter=diameter(current, member_list),
        query_distance=graph_query_distance(current, member_list, list(query)),
        edges=edges,
    )
