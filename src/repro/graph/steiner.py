"""Mehlhorn's 2-approximation for the Steiner tree problem (reference [23]).

Algorithm 1 of the paper seeds the community search with a Steiner tree over
the suggested drugs.  Following Huang et al. [22], edge weights are *truss
distances*: an edge with a high truss number is "short", so the tree prefers
densely-connected connections between query drugs.

Mehlhorn's construction:
1. compute the Voronoi partition of the graph around the terminals
   (multi-source Dijkstra),
2. build the terminal distance graph G1' whose edge (s, t) weight is the
   cheapest path touching the two Voronoi cells,
3. take a minimum spanning tree of G1', expand its edges back into graph
   paths, take an MST of that subgraph, and prune non-terminal leaves.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .graph import Edge, Graph, edge_key

WeightFn = Callable[[int, int], float]


def uniform_weight(_u: int, _v: int) -> float:
    """Unweighted Steiner tree (every edge costs 1)."""
    return 1.0


def truss_distance_weight(truss: Dict[Edge, int], max_truss: int) -> WeightFn:
    """Edge weight ``max_truss - truss(e) + 1``: high truss => short edge."""

    def weight(u: int, v: int) -> float:
        return float(max_truss - truss.get(edge_key(u, v), 2) + 1)

    return weight


def _voronoi(
    graph: Graph, terminals: Sequence[int], weight: WeightFn
) -> Tuple[List[float], List[int]]:
    """Multi-source Dijkstra: distance and owning terminal for every node."""
    dist = [float("inf")] * graph.num_nodes
    owner = [-1] * graph.num_nodes
    heap: List[Tuple[float, int, int]] = []
    for t in terminals:
        dist[t] = 0.0
        owner[t] = t
        heapq.heappush(heap, (0.0, t, t))
    while heap:
        d, node, src = heapq.heappop(heap)
        if d > dist[node] or owner[node] != src:
            continue
        for neighbor in graph.neighbors(node):
            nd = d + weight(node, neighbor)
            if nd < dist[neighbor]:
                dist[neighbor] = nd
                owner[neighbor] = src
                heapq.heappush(heap, (nd, neighbor, src))
    return dist, owner


def _dijkstra_path(
    graph: Graph, source: int, target: int, weight: WeightFn
) -> Optional[List[int]]:
    dist = {source: 0.0}
    parent: Dict[int, int] = {}
    heap = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            return path[::-1]
        if d > dist.get(node, float("inf")):
            continue
        for neighbor in graph.neighbors(node):
            nd = d + weight(node, neighbor)
            if nd < dist.get(neighbor, float("inf")):
                dist[neighbor] = nd
                parent[neighbor] = node
                heapq.heappush(heap, (nd, neighbor))
    return None


def _mst_edges(
    nodes: Sequence[int], edges: List[Tuple[float, int, int]]
) -> List[Tuple[int, int]]:
    """Kruskal MST over an explicit edge list; ignores unreachable parts."""
    parent = {n: n for n in nodes}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    tree: List[Tuple[int, int]] = []
    for _w, u, v in sorted(edges):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.append((u, v))
    return tree


def steiner_tree(
    graph: Graph,
    terminals: Sequence[int],
    weight: Optional[WeightFn] = None,
) -> Graph:
    """Mehlhorn 2-approximate Steiner tree connecting ``terminals``.

    Returns a subgraph of ``graph`` (same node-id space) that is a tree
    containing every terminal.  Raises ``ValueError`` when the terminals do
    not lie in one connected component.
    """
    terminals = sorted(set(terminals))
    if not terminals:
        raise ValueError("need at least one terminal")
    if weight is None:
        weight = uniform_weight

    if len(terminals) == 1:
        tree = Graph(graph.num_nodes)
        return tree

    dist, owner = _voronoi(graph, terminals, weight)
    for t in terminals:
        if owner[t] == -1:
            raise ValueError("terminal unreachable")

    # Terminal distance graph: for every boundary edge (u, v) between two
    # Voronoi cells, candidate terminal-terminal distance.
    candidate: Dict[Tuple[int, int], Tuple[float, Edge]] = {}
    for u, v in graph.edges():
        su, sv = owner[u], owner[v]
        if su == -1 or sv == -1 or su == sv:
            continue
        cost = dist[u] + weight(u, v) + dist[v]
        key = (min(su, sv), max(su, sv))
        if key not in candidate or cost < candidate[key][0]:
            candidate[key] = (cost, (u, v))

    terminal_edges = [(cost, s, t) for (s, t), (cost, _e) in candidate.items()]
    mst1 = _mst_edges(terminals, terminal_edges)
    if len(mst1) < len(terminals) - 1:
        raise ValueError("terminals are not in one connected component")

    # Expand each terminal-graph edge into a real path through the graph.
    subgraph_nodes: Set[int] = set(terminals)
    subgraph_edges: Set[Edge] = set()
    for s, t in mst1:
        _cost, (u, v) = candidate[(min(s, t), max(s, t))]
        path_su = _dijkstra_path(graph, s, u, weight)
        path_vt = _dijkstra_path(graph, v, t, weight)
        if path_su is None or path_vt is None:  # pragma: no cover - guarded above
            raise ValueError("internal error: boundary path missing")
        full_path = path_su + path_vt
        for a, b in zip(full_path[:-1], full_path[1:]):
            subgraph_nodes.add(a)
            subgraph_nodes.add(b)
            subgraph_edges.add(edge_key(a, b))

    # MST of the expanded subgraph, then prune non-terminal leaves.
    weighted = [(weight(u, v), u, v) for u, v in subgraph_edges]
    mst2 = _mst_edges(sorted(subgraph_nodes), weighted)

    tree = Graph(graph.num_nodes)
    for u, v in mst2:
        tree.add_edge(u, v)

    terminal_set = set(terminals)
    pruning = True
    while pruning:
        pruning = False
        for node in list(subgraph_nodes):
            if node not in terminal_set and tree.degree(node) == 1:
                neighbor = next(iter(tree.neighbors(node)))
                tree.remove_edge(node, neighbor)
                subgraph_nodes.discard(node)
                pruning = True
    return tree
