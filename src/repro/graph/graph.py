"""Core graph types for the DSSDDI reproduction.

Three structures cover everything the paper needs:

* :class:`Graph` — a plain undirected graph used by the Medical Support
  module's community-search algorithms (truss decomposition, Steiner trees).
* :class:`SignedGraph` — the Drug-Drug Interaction graph of Definition 2:
  nodes are drugs, edges carry a sign (+1 synergistic, -1 antagonistic,
  0 explicitly-no-interaction as added during DDIGCN training).
* :class:`BipartiteGraph` — the patient-drug medication-use graph of
  Definition 3 used by the Medical Decision module.

All structures use contiguous integer node ids (0..n-1) and canonical
``(min(u, v), max(u, v))`` edge keys.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

Edge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Canonical undirected edge key."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """Undirected simple graph with O(1) adjacency-set lookups."""

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._adj: List[Set[int]] = [set() for _ in range(num_nodes)]
        self._edges: Set[Edge] = set()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Edge]) -> "Graph":
        graph = cls(num_nodes)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_node(self) -> int:
        self._adj.append(set())
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        self._check(u)
        self._check(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edges.add(edge_key(u, v))

    def remove_edge(self, u: int, v: int) -> None:
        key = edge_key(u, v)
        if key not in self._edges:
            raise KeyError(f"edge {key} not in graph")
        self._edges.discard(key)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._adj):
            raise IndexError(f"node {node} out of range (n={len(self._adj)})")

    # -- queries ----------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._edges

    def neighbors(self, node: int) -> Set[int]:
        self._check(node)
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def edge_set(self) -> Set[Edge]:
        return set(self._edges)

    def nodes(self) -> range:
        return range(self.num_nodes)

    def copy(self) -> "Graph":
        clone = Graph(self.num_nodes)
        clone._adj = [set(adj) for adj in self._adj]
        clone._edges = set(self._edges)
        return clone

    def subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph; returns (graph, old->new id mapping)."""
        keep = sorted(set(nodes))
        mapping = {old: new for new, old in enumerate(keep)}
        sub = Graph(len(keep))
        for u, v in self._edges:
            if u in mapping and v in mapping:
                sub.add_edge(mapping[u], mapping[v])
        return sub, mapping

    def adjacency_matrix(self) -> np.ndarray:
        """Dense 0/1 adjacency (small graphs only: the 86-drug DDI graph)."""
        mat = np.zeros((self.num_nodes, self.num_nodes))
        if self._edges:
            edges = np.fromiter(
                (node for edge in self._edges for node in edge),
                dtype=np.int64,
                count=2 * len(self._edges),
            ).reshape(-1, 2)
            mat[edges[:, 0], edges[:, 1]] = 1.0
            mat[edges[:, 1], edges[:, 0]] = 1.0
        return mat

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"


class SignedGraph:
    """Drug-Drug Interaction graph (Definition 2).

    Edges carry a sign in {+1, -1, 0}:
    +1 synergistic, -1 antagonistic, 0 an explicit "no interaction" edge
    (the third edge type sampled during DDIGCN training, Sec. IV-A1).
    """

    VALID_SIGNS = (-1, 0, 1)

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._signs: Dict[Edge, int] = {}
        self._adj: List[Set[int]] = [set() for _ in range(num_nodes)]

    @classmethod
    def from_signed_edges(
        cls, num_nodes: int, edges: Iterable[Tuple[int, int, int]]
    ) -> "SignedGraph":
        graph = cls(num_nodes)
        for u, v, sign in edges:
            graph.add_edge(u, v, sign)
        return graph

    def add_edge(self, u: int, v: int, sign: int) -> None:
        if sign not in self.VALID_SIGNS:
            raise ValueError(f"sign must be one of {self.VALID_SIGNS}, got {sign}")
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        for node in (u, v):
            if not 0 <= node < self._num_nodes:
                raise IndexError(f"node {node} out of range (n={self._num_nodes})")
        self._signs[edge_key(u, v)] = sign
        self._adj[u].add(v)
        self._adj[v].add(u)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._signs)

    def sign(self, u: int, v: int) -> int:
        """Sign of edge (u, v); raises KeyError when absent."""
        return self._signs[edge_key(u, v)]

    def sign_or_none(self, u: int, v: int) -> Optional[int]:
        return self._signs.get(edge_key(u, v))

    def has_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._signs

    def neighbors(self, node: int) -> Set[int]:
        return self._adj[node]

    def positive_neighbors(self, node: int) -> Set[int]:
        """Drugs with a synergistic edge to ``node`` (B_v in SGCN notation)."""
        return {v for v in self._adj[node] if self._signs[edge_key(node, v)] == 1}

    def negative_neighbors(self, node: int) -> Set[int]:
        """Drugs with an antagonistic edge to ``node`` (U_v in SGCN notation)."""
        return {v for v in self._adj[node] if self._signs[edge_key(node, v)] == -1}

    def edges_with_signs(self) -> Iterator[Tuple[int, int, int]]:
        for (u, v), sign in self._signs.items():
            yield u, v, sign

    def edges_of_sign(self, sign: int) -> List[Edge]:
        return [edge for edge, s in self._signs.items() if s == sign]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge list as ``(u, v, sign)`` int64 arrays (one row per edge).

        Single-pass extraction used by the vectorized adjacency builders
        in :mod:`repro.gnn.propagation`; each undirected edge appears
        once, in canonical ``u <= v`` orientation and insertion order.
        """
        count = len(self._signs)
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        endpoints = np.fromiter(
            (node for edge in self._signs for node in edge),
            dtype=np.int64,
            count=2 * count,
        ).reshape(-1, 2)
        signs = np.fromiter(self._signs.values(), dtype=np.int64, count=count)
        return endpoints[:, 0].copy(), endpoints[:, 1].copy(), signs

    def signed_adjacency(self) -> np.ndarray:
        """Dense signed adjacency matrix (the paper's DDI matrix of Fig. 4a)."""
        mat = np.zeros((self._num_nodes, self._num_nodes))
        u, v, signs = self.edge_arrays()
        mat[u, v] = signs.astype(np.float64)
        mat[v, u] = signs.astype(np.float64)
        return mat

    def to_unsigned(self, include_zero: bool = False) -> Graph:
        """Forget signs; the MS module searches this unsigned structure.

        ``include_zero=False`` drops the sampled "no interaction" edges so
        the community search only sees real synergy/antagonism edges.
        """
        graph = Graph(self._num_nodes)
        for (u, v), sign in self._signs.items():
            if sign != 0 or include_zero:
                graph.add_edge(u, v)
        return graph

    def copy(self) -> "SignedGraph":
        clone = SignedGraph(self._num_nodes)
        clone._signs = dict(self._signs)
        clone._adj = [set(adj) for adj in self._adj]
        return clone

    def __repr__(self) -> str:
        pos = len(self.edges_of_sign(1))
        neg = len(self.edges_of_sign(-1))
        zero = len(self.edges_of_sign(0))
        return f"SignedGraph(n={self._num_nodes}, +{pos}/-{neg}/0:{zero})"


class BipartiteGraph:
    """Patient-drug medication-use graph (Definition 3).

    Patients and drugs keep separate id spaces; the graph stores the binary
    medication-use matrix Y (y_iv = 1 iff patient i takes drug v) plus
    adjacency lists in both directions for message passing.
    """

    def __init__(self, num_patients: int, num_drugs: int) -> None:
        if num_patients < 0 or num_drugs < 0:
            raise ValueError("sizes must be non-negative")
        self.num_patients = num_patients
        self.num_drugs = num_drugs
        self._patient_adj: List[Set[int]] = [set() for _ in range(num_patients)]
        self._drug_adj: List[Set[int]] = [set() for _ in range(num_drugs)]

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "BipartiteGraph":
        matrix = np.asarray(matrix)
        graph = cls(*matrix.shape)
        rows, cols = np.nonzero(matrix)
        for i, v in zip(rows.tolist(), cols.tolist()):
            graph.add_link(i, v)
        return graph

    def add_link(self, patient: int, drug: int) -> None:
        if not 0 <= patient < self.num_patients:
            raise IndexError(f"patient {patient} out of range")
        if not 0 <= drug < self.num_drugs:
            raise IndexError(f"drug {drug} out of range")
        self._patient_adj[patient].add(drug)
        self._drug_adj[drug].add(patient)

    def has_link(self, patient: int, drug: int) -> bool:
        return drug in self._patient_adj[patient]

    def drugs_of(self, patient: int) -> Set[int]:
        """N_i: the set of drugs patient i takes."""
        return self._patient_adj[patient]

    def patients_of(self, drug: int) -> Set[int]:
        """N_v: the set of patients taking drug v."""
        return self._drug_adj[drug]

    @property
    def num_links(self) -> int:
        return sum(len(adj) for adj in self._patient_adj)

    def links(self) -> Iterator[Tuple[int, int]]:
        for patient, drugs in enumerate(self._patient_adj):
            for drug in sorted(drugs):
                yield patient, drug

    def link_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All links as parallel ``(patients, drugs)`` int64 arrays."""
        count = self.num_links
        if count == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        patients = np.empty(count, dtype=np.int64)
        drugs = np.empty(count, dtype=np.int64)
        offset = 0
        for patient, adj in enumerate(self._patient_adj):
            stop = offset + len(adj)
            patients[offset:stop] = patient
            drugs[offset:stop] = sorted(adj)
            offset = stop
        return patients, drugs

    def to_matrix(self) -> np.ndarray:
        mat = np.zeros((self.num_patients, self.num_drugs))
        patients, drugs = self.link_arrays()
        mat[patients, drugs] = 1.0
        return mat

    def link_density(self) -> float:
        """Fraction of the patient x drug grid that carries a link."""
        size = self.num_patients * self.num_drugs
        return self.num_links / size if size else 0.0

    def normalized_adjacency(self, backend: Optional[str] = None):
        """Symmetric-normalized propagation matrices for MDGCN (Eq. 11-12).

        Returns ``(P2D, D2P)`` where ``P2D[i, v] = 1/sqrt(|N_i||N_v|)`` for a
        link between patient i and drug v.  ``P2D @ drug_features`` updates
        patients; ``D2P = P2D.T`` updates drugs.

        The representation follows the density-threshold policy of
        :mod:`repro.nn.sparse`: large graphs whose link density is below
        the configured threshold come back as ``scipy.sparse`` CSR
        matrices (built directly from the link arrays, never densified);
        everything else keeps the seed's dense arithmetic bitwise.
        ``backend`` overrides the process-wide policy per call
        ("auto" / "dense" / "sparse").
        """
        from ..nn import sparse as sparse_backend

        patients, drugs = self.link_arrays()
        shape = (self.num_patients, self.num_drugs)
        patient_deg = np.zeros(self.num_patients)
        np.add.at(patient_deg, patients, 1.0)
        drug_deg = np.zeros(self.num_drugs)
        np.add.at(drug_deg, drugs, 1.0)
        patient_deg = np.maximum(patient_deg, 1.0)
        drug_deg = np.maximum(drug_deg, 1.0)
        if sparse_backend.should_sparsify(shape, len(patients), backend):
            data = 1.0 / np.sqrt(patient_deg)[patients] / np.sqrt(drug_deg)[drugs]
            norm = sparse_backend.csr_from_entries(shape, patients, drugs, data)
            return norm, norm.T.tocsr()
        mat = np.zeros(shape)
        mat[patients, drugs] = 1.0
        norm = mat / np.sqrt(patient_deg)[:, None] / np.sqrt(drug_deg)[None, :]
        return norm, norm.T

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(patients={self.num_patients}, "
            f"drugs={self.num_drugs}, links={self.num_links})"
        )
