"""BFS shortest paths, diameters and query distances.

The Closest Truss Community definition (Definition 6) minimizes the
subgraph diameter; the shrink loop of Algorithm 1 deletes the nodes
furthest from the query set.  Both need plain BFS machinery.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import Graph

_INF = float("inf")


def bfs_distances(graph: Graph, source: int) -> List[float]:
    """Unweighted shortest-path distance from ``source`` to every node."""
    dist = [_INF] * graph.num_nodes
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if dist[neighbor] == _INF:
                dist[neighbor] = dist[node] + 1.0
                queue.append(neighbor)
    return dist


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from source to target, or None if disconnected."""
    if source == target:
        return [source]
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parent:
                parent[neighbor] = node
                if neighbor == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return path[::-1]
                queue.append(neighbor)
    return None


def is_connected_subset(graph: Graph, nodes: Sequence[int]) -> bool:
    """True if the induced subgraph on ``nodes`` is connected (and non-empty)."""
    node_set = set(nodes)
    if not node_set:
        return False
    start = next(iter(node_set))
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in node_set and neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen == node_set


def connected_components(graph: Graph) -> List[List[int]]:
    """All connected components as sorted node lists."""
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    component.append(neighbor)
                    queue.append(neighbor)
        components.append(sorted(component))
    return components


def component_containing(graph: Graph, nodes: Iterable[int]) -> Optional[List[int]]:
    """The component containing all of ``nodes``, or None if they are split."""
    targets = set(nodes)
    if not targets:
        return None
    for component in connected_components(graph):
        comp_set = set(component)
        if targets <= comp_set:
            return component
        if targets & comp_set:
            return None  # query nodes split across components
    return None


def diameter(graph: Graph, nodes: Optional[Sequence[int]] = None) -> float:
    """Diameter of the induced subgraph on ``nodes`` (whole graph if None).

    Returns ``inf`` when the induced subgraph is disconnected.
    """
    if nodes is None:
        nodes = list(graph.nodes())
    sub, mapping = graph.subgraph(nodes)
    best = 0.0
    for node in range(sub.num_nodes):
        dist = bfs_distances(sub, node)
        for other in range(sub.num_nodes):
            if dist[other] == _INF:
                return _INF
            best = max(best, dist[other])
    return best


def query_distance(graph: Graph, node: int, query: Sequence[int]) -> float:
    """dist(node, Q) = max over q in Q of d(node, q) — Algorithm 1's metric."""
    best = 0.0
    for q in query:
        dist = bfs_distances(graph, q)[node]
        if dist == _INF:
            return _INF
        best = max(best, dist)
    return best


def graph_query_distance(graph: Graph, nodes: Sequence[int], query: Sequence[int]) -> float:
    """dist(G', Q) = max over nodes of the query distance inside the subgraph."""
    sub, mapping = graph.subgraph(nodes)
    query_mapped = [mapping[q] for q in query if q in mapping]
    if len(query_mapped) != len(set(query)):
        return _INF
    best = 0.0
    for q in query_mapped:
        dist = bfs_distances(sub, q)
        for other in range(sub.num_nodes):
            if dist[other] == _INF:
                return _INF
            best = max(best, dist[other])
    return best
