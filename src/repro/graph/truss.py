"""Truss decomposition (Wang & Cheng, PVLDB 2012) and p-truss utilities.

Used by the Medical Support module (Sec. IV-C): the truss number of an edge
is the largest p such that the edge belongs to a p-truss subgraph, where a
p-truss requires every edge to be supported by at least (p - 2) triangles.

The decomposition follows the peeling algorithm of the paper's reference
[24]: repeatedly remove the edge with the smallest support, recording
``truss(e) = support-at-removal + 2`` and updating the supports of the
other two edges of each broken triangle.
"""

from __future__ import annotations

from typing import Dict, Set

from .graph import Edge, Graph, edge_key
from .triangles import all_edge_supports


def truss_decomposition(graph: Graph) -> Dict[Edge, int]:
    """Truss number of every edge of ``graph``.

    Peeling with a lazy bucket queue: O(m^1.5) like the reference
    implementation, entirely sufficient for DDI-scale graphs.
    """
    work = graph.copy()
    support = all_edge_supports(work)
    truss: Dict[Edge, int] = {}

    # Bucket edges by current support for an O(1) extract-min with lazy moves.
    buckets: Dict[int, Set[Edge]] = {}
    for edge, sup in support.items():
        buckets.setdefault(sup, set()).add(edge)

    k = 2  # truss number lower bound; an edge with no triangles is a 2-truss
    remaining = work.num_edges
    while remaining > 0:
        level = k - 2
        # Peel all edges whose support is <= level.
        progressed = True
        while progressed:
            progressed = False
            for sup in sorted(s for s in buckets if s <= level and buckets[s]):
                while buckets[sup]:
                    edge = buckets[sup].pop()
                    if edge not in support or support[edge] != sup:
                        continue  # stale bucket entry
                    u, v = edge
                    truss[edge] = k
                    # Break every triangle through (u, v): decrement supports.
                    common = work.neighbors(u) & work.neighbors(v)
                    for w in common:
                        for other in (edge_key(u, w), edge_key(v, w)):
                            if other in support:
                                old = support[other]
                                support[other] = old - 1
                                buckets.setdefault(old - 1, set()).add(other)
                    work.remove_edge(u, v)
                    del support[edge]
                    remaining -= 1
                    progressed = True
        k += 1
    return truss


def max_truss_subgraph(graph: Graph, p: int) -> Graph:
    """The maximal p-truss subgraph: all edges with truss number >= p."""
    truss = truss_decomposition(graph)
    sub = Graph(graph.num_nodes)
    for (u, v), value in truss.items():
        if value >= p:
            sub.add_edge(u, v)
    return sub


def is_p_truss(graph: Graph, p: int) -> bool:
    """Check Definition 5 directly: every edge supported by >= p - 2 triangles."""
    supports = all_edge_supports(graph)
    return all(sup >= p - 2 for sup in supports.values())


def peel_to_p_truss(graph: Graph, p: int) -> Graph:
    """Iteratively delete edges with support < p - 2 until a p-truss remains.

    The result is the maximal p-truss subgraph of ``graph`` (possibly empty);
    the MS module uses this while shrinking candidate communities.
    """
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        for u, v in list(work.edges()):
            common = work.neighbors(u) & work.neighbors(v)
            if len(common) < p - 2:
                work.remove_edge(u, v)
                changed = True
    return work
