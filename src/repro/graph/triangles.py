"""Triangle/support counting (Definition 5 groundwork).

The support of an edge (u, v) is the number of triangles containing it,
i.e. ``|N(u) ∩ N(v)|`` in a simple undirected graph.  Truss decomposition
and the p-truss check are built on these counts.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .graph import Edge, Graph, edge_key


def edge_support(graph: Graph, u: int, v: int) -> int:
    """Number of triangles through edge (u, v)."""
    if not graph.has_edge(u, v):
        raise KeyError(f"edge ({u}, {v}) not in graph")
    neighbors_u = graph.neighbors(u)
    neighbors_v = graph.neighbors(v)
    # Iterate over the smaller set for O(min(deg)) intersection.
    if len(neighbors_u) > len(neighbors_v):
        neighbors_u, neighbors_v = neighbors_v, neighbors_u
    return sum(1 for w in neighbors_u if w in neighbors_v)


def all_edge_supports(graph: Graph) -> Dict[Edge, int]:
    """Support of every edge, keyed canonically."""
    return {
        (u, v): edge_support(graph, u, v)
        for u, v in graph.edges()
    }


def triangles(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Enumerate each triangle exactly once as an ordered tuple u < v < w."""
    for u, v in sorted(graph.edge_set()):
        common = graph.neighbors(u) & graph.neighbors(v)
        for w in sorted(common):
            if w > v:
                yield (u, v, w)


def count_triangles(graph: Graph) -> int:
    return sum(1 for _ in triangles(graph))
