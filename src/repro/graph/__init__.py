"""Graph substrate: graph types, truss machinery and community search.

These modules implement everything the Medical Support module needs
(Definitions 5-6 and Algorithm 1 of the paper) plus the signed DDI and
bipartite medication-use graphs used by the learning modules.
"""

from .graph import BipartiteGraph, Edge, Graph, SignedGraph, edge_key
from .triangles import all_edge_supports, count_triangles, edge_support, triangles
from .truss import (
    is_p_truss,
    max_truss_subgraph,
    peel_to_p_truss,
    truss_decomposition,
)
from .shortest import (
    bfs_distances,
    component_containing,
    connected_components,
    diameter,
    graph_query_distance,
    is_connected_subset,
    query_distance,
    shortest_path,
)
from .steiner import steiner_tree, truss_distance_weight, uniform_weight
from .ctc import CTCResult, closest_truss_community

__all__ = [
    "Graph",
    "SignedGraph",
    "BipartiteGraph",
    "Edge",
    "edge_key",
    "edge_support",
    "all_edge_supports",
    "triangles",
    "count_triangles",
    "truss_decomposition",
    "max_truss_subgraph",
    "is_p_truss",
    "peel_to_p_truss",
    "bfs_distances",
    "shortest_path",
    "is_connected_subset",
    "connected_components",
    "component_containing",
    "diameter",
    "query_distance",
    "graph_query_distance",
    "steiner_tree",
    "uniform_weight",
    "truss_distance_weight",
    "CTCResult",
    "closest_truss_community",
]
