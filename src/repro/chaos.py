"""Deterministic seeded fault injection: failpoints for the write paths.

Production failures that matter here are not exceptions in happy-path
code — they are *torn writes* (power loss mid-``write``), *lost
durability* (data in the page cache that never reached the platter),
*full disks* (ENOSPC halfway through a checkpoint), and *stalls*
(a scoring call that takes a second instead of a millisecond).  None of
those occur naturally under pytest, so this module makes them injectable
on demand, deterministically, at named **failpoints** compiled into the
write paths (:mod:`repro.atomicio`) and the gateway scoring path.

A failpoint is just a named call site::

    from repro import chaos
    chaos.failpoint("cache.store.rename")     # no-op unless armed

Arming happens two ways, which compose:

* **Environment** — ``REPRO_CHAOS="cache.store.rename=kill"`` arms the
  rule in any process that inherits the variable.  This is how the chaos
  suite kills *subprocesses* at exact write offsets and how the CI smoke
  injects scoring latency into a real ``--workers 2`` pool.
* **Context manager** — ``with chaos.chaos("gateway.score=sleep:50"):``
  arms rules for the current process only (tests, notebooks).

Rule grammar (comma-separated list of rules)::

    <point>=<action>[:<arg>][@<prob>][#<limit>]

    gateway.score=sleep:200            # every hit sleeps 200 ms
    cache.store.payload=kill           # SIGKILL self at the failpoint
    ckpt.save.fsync=enospc#2           # first two hits raise ENOSPC
    stats.publish.rename=err@0.5       # half the hits raise EIO (seeded)
    ckpt.save.fsync=skip-fsync         # fsync silently does nothing
    cache.store.payload=partial:0.5    # write half the bytes, then die

``<point>`` may end with ``*`` to match a prefix (``cache.store.*``).
Probabilistic rules draw from one :class:`random.Random` seeded by
``REPRO_CHAOS_SEED`` (default 0), so a given spec + seed replays the
exact same fault schedule — chaos runs are reproducible by construction.

Actions:

========== ==========================================================
``kill``     ``SIGKILL`` the current process — the crash-consistency
             probe (nothing gets to run after it, not even ``finally``).
``enospc``   raise ``OSError(ENOSPC)`` — disk full.
``err``      raise ``OSError(EIO)`` — generic I/O failure.
``sleep``    block for ``arg`` milliseconds — slow disk / slow model.
``skip-fsync`` make :func:`fsync_enabled` answer False — simulates an
             fsync that reported success but durably did nothing.
``partial``  for payload failpoints: write only ``arg`` (fraction) of
             the bytes, then SIGKILL — the canonical torn write.
========== ==========================================================

When ``REPRO_CHAOS_LOG`` names a file, every armed hit appends
``<point> <action>`` before acting, so a parent process can assert the
kill really happened *at* the failpoint and not somewhere else.
"""

from __future__ import annotations

import errno
import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Environment variable holding the armed rule spec.
ENV_VAR = "REPRO_CHAOS"
#: Environment variable seeding probabilistic rules (int, default 0).
SEED_ENV = "REPRO_CHAOS_SEED"
#: Environment variable naming the hit-log file (optional).
LOG_ENV = "REPRO_CHAOS_LOG"

#: Actions a rule may carry (see module docstring).
ACTIONS = ("kill", "enospc", "err", "sleep", "skip-fsync", "partial")

#: The sub-points :mod:`repro.atomicio` emits for every write site
#: ``<site>``: ``<site>.setup`` (tmp created, nothing written),
#: ``<site>.payload`` (payload partially on disk), ``<site>.fsync``
#: (durability point), ``<site>.rename`` (about to promote),
#: ``<site>.after`` (promoted, cleanup pending).  Chaos suites iterate
#: this tuple to kill a writer at *every* stage of a write.
WRITE_SUBPOINTS: Tuple[str, ...] = ("setup", "payload", "fsync", "rename", "after")

#: Write sites instrumented across the repo (site -> owning module).
#: Kept as data so the kill-at-every-failpoint suites and the docs stay
#: in sync with the code; registering here is by convention, not magic.
KNOWN_SITES: Dict[str, str] = {
    "cache.store": "repro.pipeline.cache",
    "ckpt.save": "repro.train.state",
    "stats.publish": "repro.server.stats",
    "stats.pool": "repro.server.stats",
    "manifest.write": "repro.pipeline.manifest",
    "artifact.save": "repro.serving.artifact",
    "registry.publish": "repro.server.registry",
    "bench.merge": "repro.server.loadgen",
    "trace.export": "repro.obs.cli",
}

#: Non-write failpoints (no setup/payload/... sub-structure).
KNOWN_POINTS: Dict[str, str] = {
    "gateway.score": "repro.server.app (inside the micro-batch flush)",
}

#: Optional observer called as ``annotation_hook(point, action)`` right
#: before an armed rule acts.  :mod:`repro.obs.trace` registers one at
#: import so failpoint hits land as events on the active span; chaos
#: itself imports nothing from obs (no cycle).  Hook errors are
#: swallowed — telemetry must never change fault behavior.
annotation_hook = None


def _annotate(point: str, action: str) -> None:
    hook = annotation_hook
    if hook is None:
        return
    try:
        hook(point, action)
    except Exception:
        pass


class ChaosSpecError(ValueError):
    """Raised for an unparseable ``REPRO_CHAOS`` rule spec."""


@dataclass
class Rule:
    """One armed fault rule (see the module-level grammar)."""

    point: str
    action: str
    arg: float = 0.0
    prob: float = 1.0
    limit: Optional[int] = None
    fires: int = field(default=0, compare=False)

    def matches(self, point: str) -> bool:
        """Whether this rule covers ``point`` (exact or ``*`` prefix)."""
        if self.point.endswith("*"):
            return point.startswith(self.point[:-1])
        return point == self.point

    def exhausted(self) -> bool:
        """Whether the ``#limit`` fire budget has been spent."""
        return self.limit is not None and self.fires >= self.limit


def parse_spec(spec: str) -> List[Rule]:
    """Parse a comma-separated rule spec into :class:`Rule` objects."""
    rules: List[Rule] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        point, sep, rhs = chunk.partition("=")
        if not sep or not point or not rhs:
            raise ChaosSpecError(f"bad chaos rule {chunk!r} (want point=action)")
        limit: Optional[int] = None
        if "#" in rhs:
            rhs, _, limit_text = rhs.rpartition("#")
            try:
                limit = int(limit_text)
            except ValueError:
                raise ChaosSpecError(f"bad #limit in {chunk!r}") from None
        prob = 1.0
        if "@" in rhs:
            rhs, _, prob_text = rhs.rpartition("@")
            try:
                prob = float(prob_text)
            except ValueError:
                raise ChaosSpecError(f"bad @prob in {chunk!r}") from None
            if not 0.0 <= prob <= 1.0:
                raise ChaosSpecError(f"@prob must be in [0, 1] in {chunk!r}")
        action, _, arg_text = rhs.partition(":")
        action = action.strip()
        if action not in ACTIONS:
            raise ChaosSpecError(
                f"unknown chaos action {action!r} in {chunk!r} "
                f"(known: {', '.join(ACTIONS)})"
            )
        arg = 0.0
        if arg_text:
            try:
                arg = float(arg_text)
            except ValueError:
                raise ChaosSpecError(f"bad :arg in {chunk!r}") from None
        if action == "partial" and not 0.0 <= arg < 1.0:
            raise ChaosSpecError("partial:<fraction> must be in [0, 1)")
        rules.append(
            Rule(point=point.strip(), action=action, arg=arg, prob=prob, limit=limit)
        )
    return rules


class ChaosConfig:
    """A set of armed rules plus the seeded RNG that drives ``@prob``.

    Thread-safe: the gateway hits failpoints from many request threads,
    and fire counting / probability draws must not race.
    """

    def __init__(self, rules: List[Rule], seed: int = 0, log_path: Optional[str] = None) -> None:
        self.rules = rules
        self.rng = random.Random(seed)
        self.log_path = log_path
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["ChaosConfig"]:
        """Build from ``REPRO_CHAOS``/``REPRO_CHAOS_SEED``; None if unset."""
        spec = environ.get(ENV_VAR)
        if not spec:
            return None
        seed = int(environ.get(SEED_ENV, "0") or "0")
        return cls(parse_spec(spec), seed=seed, log_path=environ.get(LOG_ENV))

    def pick(self, point: str) -> Optional[Rule]:
        """The rule firing at ``point`` right now, if any (counts the hit)."""
        with self._lock:
            for rule in self.rules:
                if not rule.matches(point) or rule.exhausted():
                    continue
                if rule.prob < 1.0 and self.rng.random() >= rule.prob:
                    continue
                rule.fires += 1
                return rule
        return None

    def log_hit(self, point: str, rule: Rule) -> None:
        """Append the hit to the chaos log (best-effort, pre-action)."""
        if self.log_path is None:
            return
        try:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(f"{point} {rule.action}\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            pass


# ----------------------------------------------------------------------
# Active-config management
# ----------------------------------------------------------------------
_lock = threading.Lock()
_active: Optional[ChaosConfig] = None
_env_loaded = False


def _current() -> Optional[ChaosConfig]:
    """The active config: context-manager override, else the env spec."""
    global _env_loaded, _active
    if _active is not None:
        return _active
    if not _env_loaded:
        with _lock:
            if not _env_loaded:
                _active = ChaosConfig.from_env()
                _env_loaded = True
    return _active


def reset() -> None:
    """Drop the cached config (tests that mutate ``REPRO_CHAOS``)."""
    global _active, _env_loaded
    with _lock:
        _active = None
        _env_loaded = False


@contextmanager
def chaos(spec: str, seed: int = 0, log_path: Optional[str] = None) -> Iterator[ChaosConfig]:
    """Arm ``spec`` for the current process for the ``with`` body only."""
    global _active, _env_loaded
    config = ChaosConfig(parse_spec(spec), seed=seed, log_path=log_path)
    with _lock:
        previous, previous_loaded = _active, _env_loaded
        _active, _env_loaded = config, True
    try:
        yield config
    finally:
        with _lock:
            _active, _env_loaded = previous, previous_loaded


def active() -> bool:
    """Whether any chaos rules are currently armed."""
    return _current() is not None


# ----------------------------------------------------------------------
# The failpoint primitives the instrumented code calls
# ----------------------------------------------------------------------
def _act(point: str, rule: Rule, config: ChaosConfig) -> None:
    config.log_hit(point, rule)
    _annotate(point, rule.action)
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        # Unreachable in practice; belt and braces if SIGKILL is masked
        # by an exotic environment:
        time.sleep(60.0)
        raise OSError(errno.EIO, f"chaos kill at {point} did not terminate")
    if rule.action == "enospc":
        raise OSError(errno.ENOSPC, f"chaos: no space left on device at {point}")
    if rule.action == "err":
        raise OSError(errno.EIO, f"chaos: injected I/O error at {point}")
    if rule.action == "sleep":
        time.sleep(rule.arg / 1000.0)


def failpoint(point: str) -> None:
    """Fire ``point``: no-op unless an armed rule matches it.

    ``skip-fsync`` and ``partial`` rules do nothing here — they are
    consulted by :func:`fsync_enabled` and :func:`partial_fraction` at
    the spots where suppressing an fsync / tearing a payload makes
    sense.  Everything else acts immediately (kill / raise / sleep).
    """
    config = _current()
    if config is None:
        return
    rule = config.pick(point)
    if rule is None or rule.action in ("skip-fsync", "partial"):
        return
    _act(point, rule, config)


def fsync_enabled(point: str) -> bool:
    """False when a ``skip-fsync`` rule covers this durability point."""
    config = _current()
    if config is None:
        return True
    rule = config.pick(point)
    if rule is None:
        return True
    if rule.action == "skip-fsync":
        config.log_hit(point, rule)
        _annotate(point, rule.action)
        return False
    _act(point, rule, config)
    return True


def partial_fraction(point: str) -> Optional[float]:
    """The armed ``partial:<fraction>`` for this payload point, if any.

    The *caller* (an atomic writer) is responsible for writing only the
    fraction and then calling :func:`tear` — the torn bytes must actually
    be on disk before the process dies for the test to mean anything.
    """
    config = _current()
    if config is None:
        return None
    rule = config.pick(point)
    if rule is None:
        return None
    if rule.action == "partial":
        config.log_hit(point, rule)
        _annotate(point, rule.action)
        return rule.arg
    _act(point, rule, config)
    return None


def tear(point: str) -> None:
    """Terminate after a partial payload write (SIGKILL, like ``kill``)."""
    config = _current()
    if config is not None:
        config.log_hit(point, Rule(point=point, action="kill"))
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(60.0)
    raise OSError(errno.EIO, f"chaos tear at {point} did not terminate")
