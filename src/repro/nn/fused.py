"""Fused autograd ops for the training hot paths.

The MDGCN decoder (Eq. 14) scores tens of thousands of sampled
patient-drug pairs per epoch through a fixed pipeline:

    logits = MLP2([h_left[li] * h_right[ri], extra])

Expressed through the generic autograd ops that pipeline materializes a
dozen intermediate tensors, each a fresh multi-megabyte allocation.
:func:`pair_interaction_logits` runs the identical arithmetic — same
operations, same order, bitwise-equal outputs and per-parameter
gradients — as a single graph node with a hand-written backward that
writes into a small pool of reused workspace buffers.  On large sampled
batches this roughly halves the memory traffic of the dominant
per-epoch cost.  The row scatter in the backward goes through
:func:`repro.nn.sparse.scatter_add_rows` (CSR selection product).

Only the exact decoder shape the reproduction uses is fused (two Linear
layers, ReLU between, linear output); callers must check
:func:`can_fuse_pair_mlp` and fall back to the generic path otherwise.

The fused graph is single-shot: running ``backward`` returns the node's
workspace to the pool, so a second ``backward`` over the same forward
is not supported (nothing in the repository does that — each training
step builds a fresh graph).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from . import sparse as sparse_backend
from .layers import _ACTIVATIONS, MLP
from .tensor import Tensor

#: Per-(rows, width) pool of workspace buffer sets.  The pool as a whole
#: is bounded by a total byte budget: releasing a workspace evicts the
#: least-recently-used shapes until the budget holds, so long-lived
#: processes fitting many differently-sized models cannot accumulate
#: dead buffers.
_POOL: Dict[Tuple[int, int], List[Dict[str, np.ndarray]]] = {}
_POOL_MAX_SETS = 2
_POOL_MAX_BYTES = 192 * 1024 * 1024


def clear_workspaces() -> None:
    """Free every cached workspace buffer (e.g. after a large fit)."""
    _POOL.clear()


def _workspace_nbytes(workspace: Dict[str, np.ndarray]) -> int:
    return sum(buf.nbytes for buf in workspace.values())


def _pool_nbytes() -> int:
    return sum(
        _workspace_nbytes(ws) for stack in _POOL.values() for ws in stack
    )


def _acquire(rows: int, width: int) -> Dict[str, np.ndarray]:
    key = (rows, width)
    stack = _POOL.get(key)
    if stack:
        workspace = stack.pop()
        if not stack:
            del _POOL[key]
        return workspace
    return {}


def _release(rows: int, width: int, workspace: Dict[str, np.ndarray]) -> None:
    if _workspace_nbytes(workspace) > _POOL_MAX_BYTES:
        return
    key = (rows, width)
    stack = _POOL.pop(key, [])  # re-insert at the end: most recently used
    if len(stack) < _POOL_MAX_SETS:
        stack.append(workspace)
    _POOL[key] = stack
    # Evict least-recently-used shapes until the total budget holds.
    while _pool_nbytes() > _POOL_MAX_BYTES and len(_POOL) > 1:
        oldest = next(iter(_POOL))
        if oldest == key:
            break
        del _POOL[oldest]


def _buffer(
    workspace: Dict[str, np.ndarray], name: str, shape: Tuple[int, int]
) -> np.ndarray:
    buf = workspace.get(name)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape, dtype=np.float64)
        workspace[name] = buf
    return buf


def lightgcn_scan(
    h_patients: Tensor,
    h_drugs: Tensor,
    p2d,
    d2p,
    layer_weights,
) -> Tuple[Tensor, Tensor]:
    """Fused LightGCN propagation with layer combination (Eq. 11-13).

    Computes the same alternating propagation and weighted layer sum as
    the op-by-op loop — identical operation order, bitwise-equal outputs
    — as one graph node per output, without materializing a tensor per
    intermediate term.  ``p2d`` / ``d2p`` are fixed adjacencies (dense
    or CSR); the backward runs the reverse recurrence with ``A^T``
    products.
    """
    weights = [float(w) for w in layer_weights]
    num_layers = len(weights) - 1

    cur_p, cur_d = h_patients.data, h_drugs.data
    comb_p = cur_p * weights[0]
    comb_d = cur_d * weights[0]
    for t in range(1, num_layers + 1):
        cur_p, cur_d = (
            np.asarray(p2d @ cur_d),
            np.asarray(d2p @ cur_p),
        )
        comb_p += cur_p * weights[t]
        comb_d += cur_d * weights[t]

    requires = h_patients.requires_grad or h_drugs.requires_grad
    parents = (h_patients, h_drugs)
    out_p = Tensor(comb_p, requires_grad=requires, _parents=parents)
    out_d = Tensor(comb_d, requires_grad=requires, _parents=parents)
    if not requires:
        return out_p, out_d

    # Each output back-propagates independently (the engine calls one
    # backward per node); the reverse recurrence crosses sides the same
    # way the forward does: patients at layer t came from drugs at t-1.
    # When a loss consumes BOTH outputs this runs two reverse scans
    # (~4L adjacency products vs 2L for the generic loop) — a shared
    # scan cannot know whether the other output participates in the
    # graph, so correctness wins; MDGCN, the scale-critical consumer,
    # uses only the drug output and pays the optimal 2L.
    p2d_t = p2d.T
    d2p_t = d2p.T

    def scan_back(grad_p, grad_d) -> Tuple[np.ndarray, np.ndarray]:
        dp = grad_p * weights[num_layers] if grad_p is not None else None
        dd = grad_d * weights[num_layers] if grad_d is not None else None
        for t in range(num_layers - 1, -1, -1):
            prev_p = np.asarray(d2p_t @ dd) if dd is not None else None
            prev_d = np.asarray(p2d_t @ dp) if dp is not None else None
            if grad_p is not None:
                prev_p = (
                    grad_p * weights[t] if prev_p is None
                    else prev_p + grad_p * weights[t]
                )
            if grad_d is not None:
                prev_d = (
                    grad_d * weights[t] if prev_d is None
                    else prev_d + grad_d * weights[t]
                )
            dp, dd = prev_p, prev_d
        return dp, dd

    def backward_p(grad: np.ndarray) -> None:
        dp, dd = scan_back(grad, None)
        if h_patients.requires_grad and dp is not None:
            h_patients._accumulate(dp)
        if h_drugs.requires_grad and dd is not None:
            h_drugs._accumulate(dd)

    def backward_d(grad: np.ndarray) -> None:
        dp, dd = scan_back(None, grad)
        if h_patients.requires_grad and dp is not None:
            h_patients._accumulate(dp)
        if h_drugs.requires_grad and dd is not None:
            h_drugs._accumulate(dd)

    out_p._backward = backward_p
    out_d._backward = backward_d
    return out_p, out_d


def can_fuse_pair_mlp(mlp: MLP) -> bool:
    """True when ``mlp`` is the fusable [d+1, d, 1] shape: two biased
    Linear layers, ReLU between them, identity output, no batch norm,
    and a hidden width equal to the pair-embedding width (the fused
    workspace shares its (rows, d) buffers between the interaction and
    hidden activations, so unequal widths must take the generic path)."""
    return (
        isinstance(mlp, MLP)
        and len(mlp.layers) == 2
        and all(norm is None for norm in mlp.norms)
        and mlp.activation is _ACTIVATIONS["relu"]
        and mlp.final_activation is _ACTIVATIONS["identity"]
        and all(layer.bias is not None for layer in mlp.layers)
        and mlp.layers[0].out_features == mlp.layers[0].in_features - 1
    )


def pair_interaction_logits(
    h_left: Tensor,
    h_right: Tensor,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    extra: np.ndarray,
    mlp: MLP,
    needs_grad: bool = True,
) -> Tensor:
    """Fused ``MLP([h_left[li] * h_right[ri], extra]) -> (B,)`` logits.

    ``extra`` is a constant per-pair column (the treatment T_iv); it
    carries no gradient.  ``mlp`` must satisfy :func:`can_fuse_pair_mlp`.
    The forward replays the generic ops verbatim (gather, multiply,
    concatenate, x @ W + b, relu, x @ W + b, reshape), so outputs are
    bitwise identical to the unfused path; the backward computes the
    same per-parameter expressions directly.

    Pass ``needs_grad=False`` on inference paths that never call
    ``backward`` (e.g. scoring): the result is detached from the graph
    and the workspace returns to the pool immediately, instead of being
    pinned by a backward closure that will never run.
    """
    left_idx = np.asarray(left_idx, dtype=np.int64)
    right_idx = np.asarray(right_idx, dtype=np.int64)
    w1, b1 = mlp.layers[0].weight, mlp.layers[0].bias
    w2, b2 = mlp.layers[1].weight, mlp.layers[1].bias

    rows = len(left_idx)
    width = h_left.data.shape[1]
    if w1.data.shape != (width + 1, width):
        raise ValueError(
            f"pair_interaction_logits needs a ({width + 1}, {width}) first "
            f"layer, got {w1.data.shape}; check can_fuse_pair_mlp first"
        )
    workspace = _acquire(rows, width)
    hl = _buffer(workspace, "hl", (rows, width))
    hr = _buffer(workspace, "hr", (rows, width))
    zc = _buffer(workspace, "zc", (rows, width + 1))
    r = _buffer(workspace, "r", (rows, width))

    np.take(h_left.data, left_idx, axis=0, out=hl)
    np.take(h_right.data, right_idx, axis=0, out=hr)
    np.multiply(hl, hr, out=zc[:, :width])
    zc[:, width] = np.asarray(extra, dtype=np.float64)
    np.matmul(zc, w1.data, out=r)   # a1 = zc @ W1 + b1
    r += b1.data
    np.maximum(r, 0.0, out=r)       # relu; (r > 0) == (a1 > 0) for the mask
    out = (r @ w2.data + b2.data).reshape(-1)

    parents = (h_left, h_right, w1, b1, w2, b2)
    requires = needs_grad and any(p.requires_grad for p in parents)
    result = Tensor(out, requires_grad=requires, _parents=parents if requires else ())

    if not requires:
        _release(rows, width, workspace)
        return result

    def backward(grad: np.ndarray) -> None:
        g2 = grad.reshape(-1, 1)
        if w2.requires_grad:
            w2._accumulate(r.T @ g2)
        if b2.requires_grad:
            b2._accumulate(g2.sum(axis=0))
        da = _buffer(workspace, "da", (rows, width))
        np.matmul(g2, w2.data.T, out=da)
        da *= r > 0.0
        if b1.requires_grad:
            b1._accumulate(da.sum(axis=0))
        if w1.requires_grad:
            w1._accumulate(zc.T @ da)
        dz = _buffer(workspace, "dz", (rows, width + 1))
        np.matmul(da, w1.data.T, out=dz)
        dz0 = dz[:, :width]  # the extra column is a constant
        # r and hl/hr are no longer needed once each product is formed,
        # so their buffers hold the scatter operands.
        if h_right.requires_grad:
            np.multiply(dz0, hl, out=r)
            h_right._accumulate(
                sparse_backend.scatter_add_rows(right_idx, r, h_right.data.shape[0])
            )
        if h_left.requires_grad:
            np.multiply(dz0, hr, out=r)
            h_left._accumulate(
                sparse_backend.scatter_add_rows(left_idx, r, h_left.data.shape[0])
            )
        _release(rows, width, workspace)

    result._backward = backward
    return result
