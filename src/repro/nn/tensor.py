"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the neural-network substrate used by the
DSSDDI reproduction.  The paper's models (DDIGCN, MDGCN and the GNN
baselines) were originally implemented in PyTorch; this environment has no
deep-learning framework available, so we provide a compact but complete
reverse-mode autograd engine.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (always ``float64``) together
  with an optional gradient and a closure that propagates gradients to its
  parents.  Calling :meth:`Tensor.backward` runs a topological sort over the
  recorded graph and accumulates gradients.
* Broadcasting is fully supported: gradients flowing into a broadcast operand
  are summed back to the operand's original shape (:func:`unbroadcast`).
* Only the operations needed by the reproduction are implemented, but they
  cover a standard feed-forward/GNN workload: arithmetic, matmul, reductions,
  activations, indexing/scatter, concatenation and element-wise math.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike) -> np.ndarray:
    array = np.asarray(value, dtype=np.float64)
    return array


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # graph bookkeeping
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        # No defensive copy: backward closures hand over freshly computed
        # arrays (or views nobody mutates — nothing in the engine writes
        # to a .grad in place), and the second accumulation rebinds to a
        # new sum array anyway.  Copying here doubled the memory traffic
        # of every backward edge on large batches.
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        # Copy the seed: the caller keeps ownership of their array, and
        # _accumulate stores what it is given without copying.
        grad = _as_array(grad).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()

        # Iterative topological sort to avoid recursion limits on deep graphs.
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _binary(
        self,
        other: Union["Tensor", ArrayLike],
        forward: Callable[[np.ndarray, np.ndarray], np.ndarray],
        grad_self: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        grad_other: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = forward(self.data, other_t.data)
        requires = self.requires_grad or other_t.requires_grad
        out = Tensor(out_data, requires_grad=requires, _parents=(self, other_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    unbroadcast(grad_self(grad, self.data, other_t.data), self.shape)
                )
            if other_t.requires_grad:
                other_t._accumulate(
                    unbroadcast(grad_other(grad, self.data, other_t.data), other_t.shape)
                )

        if requires:
            out._backward = backward
        return out

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a + b,
            lambda g, a, b: g,
            lambda g, a, b: g,
        )

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a - b,
            lambda g, a, b: g,
            lambda g, a, b: -g,
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a * b,
            lambda g, a, b: g * b,
            lambda g, a, b: g * a,
        )

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a / b,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out = Tensor(
            self.data**exponent,
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        if self.requires_grad:
            out._backward = backward
        return out

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data
        requires = self.requires_grad or other_t.requires_grad
        out = Tensor(out_data, requires_grad=requires, _parents=(self, other_t))

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            # Normalize to 2-D so a single gradient rule covers the
            # vector/matrix combinations used in the codebase.
            a2 = a.reshape(1, -1) if a.ndim == 1 else a
            b2 = b.reshape(-1, 1) if b.ndim == 1 else b
            g2 = grad.reshape(a2.shape[0], b2.shape[1])
            if self.requires_grad:
                self._accumulate((g2 @ b2.T).reshape(a.shape))
            if other_t.requires_grad:
                other_t._accumulate((a2.T @ g2).reshape(b.shape))

        if requires:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        if self.requires_grad:
            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                o = np.expand_dims(o, axis=axis)
            mask = (self.data == o).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        if self.requires_grad:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # element-wise math
    # ------------------------------------------------------------------
    def _unary(
        self,
        forward: Callable[[np.ndarray], np.ndarray],
        grad_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        out_data = forward(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad_fn(grad, self.data, out_data))

        if self.requires_grad:
            out._backward = backward
        return out

    def exp(self) -> "Tensor":
        return self._unary(np.exp, lambda g, x, y: g * y)

    def log(self) -> "Tensor":
        return self._unary(np.log, lambda g, x, y: g / x)

    def sqrt(self) -> "Tensor":
        return self._unary(np.sqrt, lambda g, x, y: g * 0.5 / y)

    def tanh(self) -> "Tensor":
        return self._unary(np.tanh, lambda g, x, y: g * (1.0 - y * y))

    def sigmoid(self) -> "Tensor":
        def forward(x: np.ndarray) -> np.ndarray:
            out = np.empty_like(x)
            pos = x >= 0
            out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
            ex = np.exp(x[~pos])
            out[~pos] = ex / (1.0 + ex)
            return out

        return self._unary(forward, lambda g, x, y: g * y * (1.0 - y))

    def relu(self) -> "Tensor":
        return self._unary(
            lambda x: np.maximum(x, 0.0),
            lambda g, x, y: g * (x > 0.0),
        )

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        slope = float(negative_slope)
        return self._unary(
            lambda x: np.where(x > 0.0, x, slope * x),
            lambda g, x, y: g * np.where(x > 0.0, 1.0, slope),
        )

    def softplus(self) -> "Tensor":
        def sigmoid_stable(x: np.ndarray) -> np.ndarray:
            out = np.empty_like(x)
            pos = x >= 0
            out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
            ex = np.exp(x[~pos])
            out[~pos] = ex / (1.0 + ex)
            return out

        return self._unary(
            lambda x: np.logaddexp(0.0, x),
            lambda g, x, y: g * sigmoid_stable(x),
        )

    def abs(self) -> "Tensor":
        return self._unary(np.abs, lambda g, x, y: g * np.sign(x))

    def clip(self, low: float, high: float) -> "Tensor":
        return self._unary(
            lambda x: np.clip(x, low, high),
            lambda g, x, y: g * ((x >= low) & (x <= high)),
        )

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = Tensor(
            self.data.reshape(shape),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        if self.requires_grad:
            out._backward = backward
        return out

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out = Tensor(
            self.data.transpose(axes),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            if axes is None:
                self._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes)
                self._accumulate(grad.transpose(inverse))

        if self.requires_grad:
            out._backward = backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(
            self.data[index],
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        if self.requires_grad:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # free functions as methods
    # ------------------------------------------------------------------
    def dot_rows(self, other: "Tensor") -> "Tensor":
        """Row-wise inner product: ``(a * b).sum(axis=-1)``."""
        return (self * other).sum(axis=-1)


# ----------------------------------------------------------------------
# module-level helpers
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors))

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    if requires:
        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors))

    def backward(grad: np.ndarray) -> None:
        parts = np.moveaxis(grad, axis, 0)
        for t, part in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(np.asarray(part))

    if requires:
        out._backward = backward
    return out


def where(condition: ArrayLike, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select with gradient support for both branches."""
    cond = np.asarray(condition, dtype=bool)
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(cond, a_t.data, b_t.data)
    requires = a_t.requires_grad or b_t.requires_grad
    out = Tensor(out_data, requires_grad=requires, _parents=(a_t, b_t))

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(unbroadcast(grad * cond, a_t.shape))
        if b_t.requires_grad:
            b_t._accumulate(unbroadcast(grad * (~cond), b_t.shape))

    if requires:
        out._backward = backward
    return out


def matmul_fixed(a, b: Tensor) -> Tensor:
    """Multiply a constant matrix (e.g. a normalized adjacency) by a tensor.

    Propagation primitive used by the GNN layers: ``a`` carries no
    gradient, only ``b`` does.  Keeping ``a`` out of the autograd graph
    avoids storing dense parents for large adjacency matrices.

    ``a`` may be a dense ``ndarray`` **or** a ``scipy.sparse`` matrix
    (CSR from :mod:`repro.nn.sparse`): the forward pass is ``A @ x`` and
    the backward pass ``A^T @ g``, both staying inside scipy's sparse
    kernels when ``a`` is sparse.  The output (and the accumulated
    gradient) is always a dense ndarray.
    """
    from . import sparse as _sparse_backend

    if _sparse_backend.is_sparse(a):
        out_data = np.asarray(a @ b.data)
        a_t = a.T  # CSC view, no copy; scipy multiplies it natively

        def backward(grad: np.ndarray) -> None:
            b._accumulate(np.asarray(a_t @ grad))

    else:
        out_data = a @ b.data

        def backward(grad: np.ndarray) -> None:
            b._accumulate(a.T @ grad)

    out = Tensor(out_data, requires_grad=b.requires_grad, _parents=(b,))
    if b.requires_grad:
        out._backward = backward
    return out


def gather_rows(t: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``t[index]`` with gradient scatter-add on backward.

    The 2-D fast path scatters through :func:`repro.nn.sparse.scatter_add_rows`
    (CSR selection product on large batches) instead of the generic
    ``np.add.at`` of ``Tensor.__getitem__``; other shapes fall back to
    the generic indexing op.
    """
    index = np.asarray(index, dtype=np.int64)
    if t.data.ndim != 2 or index.ndim != 1:
        return t[index]
    out = Tensor(t.data[index], requires_grad=t.requires_grad, _parents=(t,))

    def backward(grad: np.ndarray) -> None:
        from . import sparse as _sparse_backend

        t._accumulate(_sparse_backend.scatter_add_rows(index, grad, t.data.shape[0]))

    if t.requires_grad:
        out._backward = backward
    return out


def segment_mean(t: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows of ``t`` into ``num_segments`` buckets.

    Used by message-passing layers: ``segment_ids[i]`` is the destination
    node of row ``i``.  Empty segments produce zero rows.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    safe = np.maximum(counts, 1.0)

    out_data = np.zeros((num_segments,) + t.data.shape[1:], dtype=np.float64)
    np.add.at(out_data, segment_ids, t.data)
    out_data /= safe.reshape((-1,) + (1,) * (t.data.ndim - 1))

    out = Tensor(out_data, requires_grad=t.requires_grad, _parents=(t,))

    def backward(grad: np.ndarray) -> None:
        scaled = grad / safe.reshape((-1,) + (1,) * (grad.ndim - 1))
        t._accumulate(scaled[segment_ids])

    if t.requires_grad:
        out._backward = backward
    return out


def segment_sum(t: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum-aggregate rows of ``t`` into ``num_segments`` buckets."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = np.zeros((num_segments,) + t.data.shape[1:], dtype=np.float64)
    np.add.at(out_data, segment_ids, t.data)
    out = Tensor(out_data, requires_grad=t.requires_grad, _parents=(t,))

    def backward(grad: np.ndarray) -> None:
        t._accumulate(grad[segment_ids])

    if t.requires_grad:
        out._backward = backward
    return out


def softmax(t: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax with autograd support."""
    shifted = t - Tensor(t.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over variable-sized segments (attention over neighbourhoods).

    ``scores`` is 1-D; entries sharing a ``segment_id`` are normalized
    together.  Used by the attention-based signed GNNs (SiGAT, SNEA).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Per-segment max for stability (constant w.r.t. autograd, which is fine
    # because softmax is shift-invariant).
    seg_max = np.full(num_segments, -np.inf)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max[np.isneginf(seg_max)] = 0.0
    shifted = scores - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    return exp / gather_rows(denom, segment_ids)
