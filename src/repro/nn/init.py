"""Parameter initialization schemes for the nn substrate.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .tensor import Tensor


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...], gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform init: U(-a, a), a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def xavier_normal(rng: np.random.Generator, shape: Tuple[int, ...], gain: float = 1.0) -> Tensor:
    """Glorot/Xavier normal init: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def kaiming_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> Tensor:
    """He/Kaiming uniform init for ReLU networks."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def zeros_init(shape: Tuple[int, ...]) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=True)


def normal_init(rng: np.random.Generator, shape: Tuple[int, ...], std: float = 0.01) -> Tensor:
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    # For 2-D weight matrices stored (in_features, out_features) we follow the
    # convention used throughout this codebase: rows are inputs.
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    return fan_in, fan_out
