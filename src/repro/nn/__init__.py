"""Numpy-based neural-network substrate (autograd, layers, optimizers, losses).

The DSSDDI paper's models were implemented in PyTorch; this package provides
an equivalent, dependency-free substrate so that the full system can run in
this environment.  See ``repro.nn.tensor`` for the autograd engine,
``repro.nn.sparse`` for the optional scipy-backed CSR propagation backend
(everything degrades to dense when scipy is absent), and ``repro.nn.fused``
for the fused training hot-path ops.
"""

from .tensor import (
    Tensor,
    concat,
    gather_rows,
    matmul_fixed,
    ones,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    tensor,
    unbroadcast,
    where,
    zeros,
)
from .layers import (
    BatchNorm1d,
    Dropout,
    Embedding,
    Linear,
    MLP,
    Module,
    ParameterList,
    Sequential,
    get_activation,
)
from .losses import (
    bce_loss,
    bce_with_logits,
    l2_regularizer,
    margin_ranking_loss,
    mse_loss,
    multinomial_nll,
)
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from . import init
from . import sparse

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "concat",
    "stack",
    "where",
    "softmax",
    "segment_softmax",
    "segment_mean",
    "segment_sum",
    "gather_rows",
    "matmul_fixed",
    "unbroadcast",
    "Module",
    "Linear",
    "MLP",
    "BatchNorm1d",
    "Dropout",
    "Embedding",
    "Sequential",
    "ParameterList",
    "get_activation",
    "mse_loss",
    "bce_loss",
    "bce_with_logits",
    "margin_ranking_loss",
    "multinomial_nll",
    "l2_regularizer",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "init",
    "sparse",
]
