"""Neural-network layers on top of the autograd substrate.

The layer set mirrors what the DSSDDI paper's models need: fully connected
layers with LeakyReLU (MDGCN encoder, Eq. 9-10), multi-layer perceptrons
(GIN update functions f_Theta, the MDGCN decoder f_Theta2), batch
normalization (applied after each DDIGCN layer per Sec. V-A3), dropout and
embeddings (one-hot drug IDs).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init as initializers
from .tensor import Tensor


class Module:
    """Base class with parameter registration and train/eval switching."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration --------------------------------------------------
    def register_parameter(self, name: str, param: Tensor) -> Tensor:
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module):
            if not hasattr(self, "_modules"):
                raise RuntimeError("call Module.__init__ before assigning submodules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------
    def parameters(self) -> List[Tensor]:
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` with weights stored (in_features, out_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", initializers.xavier_uniform(rng, (in_features, out_features))
        )
        self.bias: Optional[Tensor] = None
        if bias:
            self.bias = self.register_parameter(
                "bias", initializers.zeros_init((out_features,))
            )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


_ACTIVATIONS: Dict[str, Callable[[Tensor], Tensor]] = {
    "relu": lambda t: t.relu(),
    "leaky_relu": lambda t: t.leaky_relu(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "identity": lambda t: t,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation function by name."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None


class MLP(Module):
    """Multi-layer perceptron used as the GIN update function and decoders.

    Hidden layers use the requested activation; the output layer is linear
    unless ``final_activation`` is given.  Optional batch normalization after
    every hidden layer matches the paper's DDIGCN training setup.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        final_activation: str = "identity",
        batch_norm: bool = False,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layers: List[Linear] = []
        self.norms: List[Optional["BatchNorm1d"]] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(n_in, n_out, rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)
            is_hidden = i < len(sizes) - 2
            if batch_norm and is_hidden:
                norm = BatchNorm1d(n_out)
                self.register_module(f"norm{i}", norm)
                self.norms.append(norm)
            else:
                self.norms.append(None)
        self.activation = get_activation(activation)
        self.final_activation = get_activation(final_activation)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < last:
                if self.norms[i] is not None:
                    x = self.norms[i](x)
                x = self.activation(x)
            else:
                x = self.final_activation(x)
        return x


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of an (N, F) tensor."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.register_parameter(
            "gamma", Tensor(np.ones(num_features), requires_grad=True)
        )
        self.beta = self.register_parameter(
            "beta", Tensor(np.zeros(num_features), requires_grad=True)
        )
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=0)
            var = x.data.var(axis=0)
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * var
            )
            centered = x - Tensor(mean)
            scale = Tensor(1.0 / np.sqrt(var + self.eps))
        else:
            centered = x - Tensor(self.running_mean)
            scale = Tensor(1.0 / np.sqrt(self.running_var + self.eps))
        return centered * scale * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = self.register_parameter(
            "weight", initializers.xavier_uniform(rng, (num_embeddings, dim))
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[ids]


class Sequential(Module):
    """Run modules in order; each must map Tensor -> Tensor."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.items: List[Module] = []
        for i, module in enumerate(modules):
            self.register_module(f"m{i}", module)
            self.items.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.items:
            x = module(x)
        return x


class ParameterList(Module):
    """Container for a variable number of raw parameters."""

    def __init__(self, tensors: Iterable[Tensor]) -> None:
        super().__init__()
        self.items: List[Tensor] = []
        for i, tensor in enumerate(tensors):
            self.register_parameter(f"p{i}", tensor)
            self.items.append(tensor)

    def __iter__(self) -> Iterator[Tensor]:
        return iter(self.items)

    def __getitem__(self, idx: int) -> Tensor:
        return self.items[idx]

    def __len__(self) -> int:
        return len(self.items)
