"""CSR propagation backend: policy, builders and sparse-aware products.

The GNN propagations in this codebase multiply by *fixed* normalized
adjacencies (patient-drug, DDI).  At realistic cohort sizes those
matrices are >99% empty, so storing and multiplying them densely wastes
both memory and time.  This module centralizes the backend decision:

* ``should_sparsify(shape, nnz)`` implements the selection policy — a
  matrix goes CSR when (a) scipy is importable, (b) it is large enough
  that sparse bookkeeping pays off (``min_size`` elements), and (c) its
  density is below ``density_threshold``.  Small or dense matrices keep
  the dense path, whose arithmetic is bitwise identical to the seed
  implementation.
* ``set_backend`` / ``use_backend`` override the policy globally
  (``"dense"`` forces dense everywhere for bitwise-compat runs,
  ``"sparse"`` forces CSR, ``"auto"`` applies the density rule).  The
  per-module configs (:class:`repro.core.config.MDGCNConfig` and
  ``DDIGCNConfig``) carry a ``propagation_backend`` field that is passed
  down to the adjacency producers, so a single run can mix policies.
* ``matmul`` multiplies mixed dense/CSR operands and always returns a
  dense ``ndarray``, which is what the autograd engine stores.

scipy is an optional dependency: when it is missing every policy
resolves to dense and the system keeps working exactly as before.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple, Union

import numpy as np

try:  # pragma: no cover - exercised implicitly by every import
    from scipy import sparse as _scipy_sparse

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - CI images without scipy
    _scipy_sparse = None
    HAVE_SCIPY = False

BACKENDS = ("auto", "dense", "sparse")

#: Density below which a sufficiently large matrix is stored as CSR.
DEFAULT_DENSITY_THRESHOLD = 0.05
#: Matrices with fewer elements than this always stay dense: at small
#: sizes the dense BLAS path wins and, more importantly, the seed test
#: suite (small graphs throughout) keeps its exact numerics.
DEFAULT_MIN_SIZE = 32768

_backend = "auto"
_density_threshold = DEFAULT_DENSITY_THRESHOLD
_min_size = DEFAULT_MIN_SIZE

Matrix = Union[np.ndarray, "_scipy_sparse.spmatrix"]


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def get_backend() -> str:
    """The process-wide backend policy ("auto", "dense" or "sparse")."""
    return _backend


def set_backend(backend: str) -> None:
    """Set the process-wide backend policy."""
    global _backend
    _backend = _check_backend(backend)


@contextmanager
def use_backend(backend: str) -> Iterator[None]:
    """Temporarily force a backend policy (tests, bitwise-compat runs)."""
    global _backend
    previous = _backend
    _backend = _check_backend(backend)
    try:
        yield
    finally:
        _backend = previous


def get_density_threshold() -> float:
    """The current density cut-off of the auto policy."""
    return _density_threshold


def set_density_threshold(threshold: float, min_size: Optional[int] = None) -> None:
    """Tune the auto policy: density cut-off and optional size floor."""
    global _density_threshold, _min_size
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("density threshold must be in [0, 1]")
    _density_threshold = float(threshold)
    if min_size is not None:
        if min_size < 0:
            raise ValueError("min_size must be non-negative")
        _min_size = int(min_size)


def is_sparse(x: object) -> bool:
    """True when ``x`` is a scipy sparse matrix/array."""
    return HAVE_SCIPY and _scipy_sparse.issparse(x)


def density(x: Matrix) -> float:
    """Fraction of stored/non-zero entries; 0.0 for empty matrices."""
    if is_sparse(x):
        size = x.shape[0] * x.shape[1]
        return x.nnz / size if size else 0.0
    arr = np.asarray(x)
    return float(np.count_nonzero(arr)) / arr.size if arr.size else 0.0


def to_dense(x: Matrix) -> np.ndarray:
    """Densify ``x`` to a float64 ndarray (no copy when already dense)."""
    if is_sparse(x):
        return np.asarray(x.toarray(), dtype=np.float64)
    return np.asarray(x, dtype=np.float64)


def as_csr(x: Matrix) -> "_scipy_sparse.csr_matrix":
    """Convert dense or sparse input to CSR (requires scipy)."""
    if not HAVE_SCIPY:
        raise RuntimeError("scipy is not available; cannot build CSR matrices")
    if is_sparse(x):
        return x.tocsr()
    return _scipy_sparse.csr_matrix(np.asarray(x, dtype=np.float64))


def should_sparsify(
    shape: Tuple[int, int], nnz: int, backend: Optional[str] = None
) -> bool:
    """Apply the backend policy to a matrix of ``shape`` with ``nnz`` entries."""
    backend = _check_backend(backend or _backend)
    if not HAVE_SCIPY or backend == "dense":
        return False
    if backend == "sparse":
        return True
    size = shape[0] * shape[1]
    if size < _min_size:
        return False
    return nnz <= _density_threshold * size


def maybe_sparse(mat: Matrix, backend: Optional[str] = None) -> Matrix:
    """Return ``mat`` in the representation the policy selects.

    Dense input is converted to CSR only when :func:`should_sparsify`
    says so; sparse input is densified when the policy resolves to
    dense.  The dense values are preserved exactly either way.
    """
    if is_sparse(mat):
        if should_sparsify(mat.shape, mat.nnz, backend):
            return mat.tocsr()
        return to_dense(mat)
    arr = np.asarray(mat, dtype=np.float64)
    if arr.ndim == 2 and should_sparsify(arr.shape, int(np.count_nonzero(arr)), backend):
        return _scipy_sparse.csr_matrix(arr)
    return arr


def csr_from_entries(
    shape: Tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
) -> "_scipy_sparse.csr_matrix":
    """Build a CSR matrix from COO-style entry arrays (duplicates summed)."""
    if not HAVE_SCIPY:
        raise RuntimeError("scipy is not available; cannot build CSR matrices")
    return _scipy_sparse.csr_matrix(
        (np.asarray(data, dtype=np.float64), (rows, cols)), shape=shape
    )


#: Row counts below this use ``np.add.at`` for scatter-adds; above it the
#: CSR selection-matrix product is ~5-10x faster and sums contributions in
#: the same (occurrence) order, so the result is bitwise identical.
SCATTER_SPARSE_MIN_ROWS = 4096


def scatter_add_rows(
    index: np.ndarray, values: np.ndarray, num_rows: int
) -> np.ndarray:
    """Scatter-add ``values`` rows into a ``(num_rows, ...)`` array.

    ``out[index[j]] += values[j]`` for every ``j`` — the backward pass of
    a row gather.  Large 2-D scatters route through a CSR selection
    matrix (one entry per gathered row), which replaces numpy's slow
    buffered ``np.add.at`` with a compiled sparse product; duplicates sum
    in ascending occurrence order either way, so both paths produce the
    same bits.
    """
    index = np.asarray(index, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if (
        HAVE_SCIPY
        and values.ndim == 2
        and len(index) >= SCATTER_SPARSE_MIN_ROWS
    ):
        selector = _scipy_sparse.csr_matrix(
            (np.ones(len(index)), (index, np.arange(len(index)))),
            shape=(num_rows, len(index)),
        )
        return np.asarray(selector @ values)
    out = np.zeros((num_rows,) + values.shape[1:], dtype=np.float64)
    np.add.at(out, index, values)
    return out


def matmul(a: Matrix, b: Matrix) -> np.ndarray:
    """``a @ b`` for any dense/CSR operand combination, densified.

    The transpose trick for ``dense @ sparse`` keeps the product inside
    scipy's CSR kernels instead of falling back to a dense conversion.
    """
    if is_sparse(a):
        return np.asarray(a @ to_dense(b) if is_sparse(b) else a @ b)
    if is_sparse(b):
        return np.asarray((b.T @ np.asarray(a).T).T)
    return np.asarray(a) @ np.asarray(b)
