"""Loss functions used across the reproduction.

* :func:`mse_loss` — DDIGCN edge regression (Eq. 6).
* :func:`bce_loss` / :func:`bce_with_logits` — MDGCN factual and
  counterfactual link objectives (Eq. 16-17) and the baseline recommenders.
* :func:`margin_ranking_loss` — TransE training for the synthetic DRKG
  embeddings.
* :func:`multinomial_nll` — SafeDrug-style multi-label objective.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

_EPS = 1e-12


def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over every element."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    return (diff * diff).mean()


def bce_loss(prob: Tensor, target: Tensor | np.ndarray, weight: Optional[np.ndarray] = None) -> Tensor:
    """Binary cross entropy on probabilities in (0, 1).

    Probabilities are clipped away from {0, 1} for numerical stability; the
    clip keeps gradients finite exactly as PyTorch's BCELoss does.
    """
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    clipped = prob.clip(_EPS, 1.0 - _EPS)
    loss = -(target_t * clipped.log() + (1.0 - target_t) * (1.0 - clipped).log())
    if weight is not None:
        loss = loss * Tensor(weight)
    return loss.mean()


def bce_with_logits(logits: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Numerically stable BCE on raw logits.

    Uses the identity ``softplus(x) - x * y``, whose gradient is exactly
    ``sigmoid(x) - y`` everywhere (no relu/abs kinks at x = 0).
    """
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    loss = logits.softplus() - logits * target_t
    return loss.mean()


def margin_ranking_loss(positive: Tensor, negative: Tensor, margin: float = 1.0) -> Tensor:
    """Hinge on score differences: ``mean(max(0, margin + pos - neg))``.

    With TransE distance scores (lower is better for true triples), the
    positive distance should be at least ``margin`` below the negative one.
    """
    return (positive - negative + margin).relu().mean()


def multinomial_nll(prob: Tensor, target: np.ndarray) -> Tensor:
    """Multi-label negative log likelihood on sigmoid probabilities."""
    return bce_loss(prob, Tensor(np.asarray(target, dtype=np.float64)))


def l2_regularizer(params, coefficient: float) -> Tensor:
    """Sum of squared parameter entries scaled by ``coefficient``."""
    total: Optional[Tensor] = None
    for param in params:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient
