"""Optimizers for the nn substrate.

The paper trains MDGCN and DDIGCN with Adam (Sec. V-A3); SGD is provided for
tests and the classic-ML baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Internal state as flat ``name -> ndarray`` (see ``repro.train``).

        The base optimizer is stateless; subclasses with moment/velocity
        buffers extend this so a :class:`repro.train.TrainState`
        checkpoint restores the exact update trajectory.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_dict` (no-op for stateless optimizers)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data = param.data - self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Momentum buffers (only the initialized ones are stored)."""
        return {
            f"velocity.{i}": v
            for i, v in enumerate(self._velocity)
            if v is not None
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore momentum buffers written by :meth:`state_dict`."""
        self._velocity = [
            np.array(state[f"velocity.{i}"])
            if f"velocity.{i}" in state
            else None
            for i in range(len(self.params))
        ]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Step count plus the initialized first/second-moment buffers."""
        state: Dict[str, np.ndarray] = {"t": np.int64(self._t)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            if m is not None:
                state[f"m.{i}"] = m
                state[f"v.{i}"] = v
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the exact Adam trajectory written by :meth:`state_dict`."""
        self._t = int(state["t"])
        self._m = [
            np.array(state[f"m.{i}"]) if f"m.{i}" in state else None
            for i in range(len(self.params))
        ]
        self._v = [
            np.array(state[f"v.{i}"]) if f"v.{i}" in state else None
            for i in range(len(self.params))
        ]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for monitoring training).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
