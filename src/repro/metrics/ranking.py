"""Ranking metrics: Precision@k, Recall@k, NDCG@k (Eq. 21-24).

The paper's Precision@k and Recall@k are *micro*-averaged over patients
(sums in numerator and denominator, Eq. 21-22); NDCG@k is macro-averaged
(mean over patients, Eq. 23).  Patients with no ground-truth drugs are
skipped for NDCG (their IDCG is zero) and contribute nothing to the
recall denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores per row, in descending score order."""
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError("scores must be (num_patients, num_drugs)")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}], got {k}")
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    row = np.arange(scores.shape[0])[:, None]
    order = np.argsort(-scores[row, part], axis=1, kind="stable")
    return part[row, order]


def precision_at_k(scores: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Eq. 21: sum_j |P(j) cap Q(j)| / sum_j |P(j)|."""
    labels = np.asarray(labels)
    top = top_k_indices(scores, k)
    row = np.arange(scores.shape[0])[:, None]
    hits = labels[row, top].sum()
    return float(hits) / float(scores.shape[0] * k)


def recall_at_k(scores: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Eq. 22: sum_j |P(j) cap Q(j)| / sum_j |Q(j)|."""
    labels = np.asarray(labels)
    total = labels.sum()
    if total == 0:
        return 0.0
    top = top_k_indices(scores, k)
    row = np.arange(scores.shape[0])[:, None]
    hits = labels[row, top].sum()
    return float(hits) / float(total)


def ndcg_at_k(scores: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Eq. 23-24 with binary relevance (2^rel - 1 = rel).

    Patients with no positive labels are excluded from the average, as
    their ideal DCG is undefined (zero).
    """
    labels = np.asarray(labels)
    top = top_k_indices(scores, k)
    row = np.arange(scores.shape[0])[:, None]
    gains = labels[row, top].astype(np.float64)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = (gains * discounts[None, :]).sum(axis=1)
    label_counts = labels.sum(axis=1).astype(np.int64)
    ideal_hits = np.minimum(label_counts, k)
    # IDCG per patient: best case puts all positives first.
    cumulative = np.concatenate([[0.0], np.cumsum(discounts)])
    idcg = cumulative[ideal_hits]
    valid = idcg > 0
    if not valid.any():
        return 0.0
    return float((dcg[valid] / idcg[valid]).mean())


@dataclass(frozen=True)
class RankingReport:
    """All three metrics at one cutoff."""

    k: int
    precision: float
    recall: float
    ndcg: float


def ranking_report(
    scores: np.ndarray, labels: np.ndarray, ks: Sequence[int]
) -> List[RankingReport]:
    """Evaluate every cutoff in ``ks`` (the paper uses k = 1..6 / {4, 6, 8})."""
    return [
        RankingReport(
            k=k,
            precision=precision_at_k(scores, labels, k),
            recall=recall_at_k(scores, labels, k),
            ndcg=ndcg_at_k(scores, labels, k),
        )
        for k in ks
    ]
