"""Representation-similarity analysis (Fig. 7 of the paper).

The paper contrasts DSSDDI with LightGCN by the cosine-similarity heat maps
of their patient and drug representations: LightGCN's patient rows are
nearly identical (over-smoothing) while DSSDDI's stay differentiated.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def cosine_similarity_matrix(representations: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity of representation rows."""
    reps = np.asarray(representations, dtype=np.float64)
    if reps.ndim != 2:
        raise ValueError("representations must be 2-D")
    norms = np.linalg.norm(reps, axis=1, keepdims=True)
    normalized = reps / np.maximum(norms, 1e-12)
    sim = normalized @ normalized.T
    return np.clip(sim, -1.0, 1.0)


def offdiagonal_mean(similarity: np.ndarray) -> float:
    """Mean similarity excluding the diagonal — the over-smoothing score."""
    similarity = np.asarray(similarity)
    n = similarity.shape[0]
    if n < 2:
        raise ValueError("need at least two rows")
    mask = ~np.eye(n, dtype=bool)
    return float(similarity[mask].mean())


def smoothing_report(representations_by_model: Dict[str, np.ndarray]) -> Dict[str, float]:
    """Off-diagonal mean cosine similarity per model (Fig. 7 summary)."""
    return {
        name: offdiagonal_mean(cosine_similarity_matrix(reps))
        for name, reps in representations_by_model.items()
    }
