"""Suggestion Satisfaction (SS), Definition 7 / Eq. 19.

Given k suggested drugs and the closest dense subgraph G_sub (n' nodes)
around them in the DDI graph:

    SS = alpha * 2 (r_in_pos + 1) / ((r_in_neg + 1) (k (k - 1) + 2))
       + (1 - alpha) * r_out_neg / (k (n' - k))

* r_in_pos / r_in_neg: synergistic / antagonistic edges among the suggested
  drugs — synergy inside the suggestion is good, antagonism bad.
* r_out_neg: antagonistic edges between suggested and non-suggested members
  of the community — the suggestion *avoiding* antagonists is good.

Larger SS means a more coherent, safer suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..graph import SignedGraph, closest_truss_community


@dataclass
class SatisfactionBreakdown:
    """SS value plus the counts that produced it (for explanations)."""

    value: float
    r_in_pos: int
    r_in_neg: int
    r_out_neg: int
    subgraph_nodes: int
    k: int


def suggestion_satisfaction(
    ddi: SignedGraph,
    suggested: Sequence[int],
    alpha: float = 0.5,
    subgraph_nodes: Optional[Sequence[int]] = None,
) -> SatisfactionBreakdown:
    """Compute SS for one suggestion.

    Args:
        ddi: signed DDI graph.
        suggested: the k suggested drug ids.
        alpha: balance between in-suggestion synergy and out-of-suggestion
            antagonism terms.
        subgraph_nodes: the closest-dense-subgraph members; computed via
            :func:`repro.graph.closest_truss_community` when omitted.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    suggested = sorted(set(int(s) for s in suggested))
    k = len(suggested)
    if k == 0:
        raise ValueError("need at least one suggested drug")
    for s in suggested:
        if not 0 <= s < ddi.num_nodes:
            raise IndexError(f"drug {s} out of range")

    if subgraph_nodes is None:
        community = closest_truss_community(ddi.to_unsigned(), suggested)
        if community is None:
            # Disconnected suggestion: fall back to the union of the
            # suggested drugs and their direct DDI neighbours.
            members = set(suggested)
            for s in suggested:
                members.update(ddi.neighbors(s))
            subgraph_nodes = sorted(members)
        else:
            subgraph_nodes = community.nodes
    members = sorted(set(int(x) for x in subgraph_nodes) | set(suggested))
    n_prime = len(members)

    suggested_set = set(suggested)
    r_in_pos = 0
    r_in_neg = 0
    r_out_neg = 0
    for idx, u in enumerate(members):
        for v in members[idx + 1 :]:
            sign = ddi.sign_or_none(u, v)
            if sign is None or sign == 0:
                continue
            u_in = u in suggested_set
            v_in = v in suggested_set
            if u_in and v_in:
                if sign == 1:
                    r_in_pos += 1
                else:
                    r_in_neg += 1
            elif u_in != v_in and sign == -1:
                r_out_neg += 1

    synergy_term = 2.0 * (r_in_pos + 1) / ((r_in_neg + 1) * (k * (k - 1) + 2))
    if n_prime > k:
        antagonism_term = r_out_neg / (k * (n_prime - k))
    else:
        antagonism_term = 0.0
    value = alpha * synergy_term + (1.0 - alpha) * antagonism_term
    return SatisfactionBreakdown(
        value=value,
        r_in_pos=r_in_pos,
        r_in_neg=r_in_neg,
        r_out_neg=r_out_neg,
        subgraph_nodes=n_prime,
        k=k,
    )


def mean_satisfaction_at_k(
    ddi: SignedGraph,
    scores: np.ndarray,
    k: int,
    alpha: float = 0.5,
    max_patients: Optional[int] = None,
) -> float:
    """SS@k: average SS of the top-k suggestion over (a sample of) patients.

    ``max_patients`` caps the evaluation for speed; the deterministic first
    rows are used so results stay reproducible.
    """
    from .ranking import top_k_indices

    scores = np.asarray(scores)
    rows = scores.shape[0] if max_patients is None else min(scores.shape[0], max_patients)
    top = top_k_indices(scores[:rows], k)
    values = [
        suggestion_satisfaction(ddi, top[i].tolist(), alpha=alpha).value
        for i in range(rows)
    ]
    return float(np.mean(values))
