"""Evaluation metrics: ranking (Eq. 21-24), SS (Eq. 19), similarity (Fig. 7)."""

from .ranking import (
    RankingReport,
    ndcg_at_k,
    precision_at_k,
    ranking_report,
    recall_at_k,
    top_k_indices,
)
from .satisfaction import (
    SatisfactionBreakdown,
    mean_satisfaction_at_k,
    suggestion_satisfaction,
)
from .similarity import cosine_similarity_matrix, offdiagonal_mean, smoothing_report

__all__ = [
    "top_k_indices",
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "RankingReport",
    "ranking_report",
    "suggestion_satisfaction",
    "mean_satisfaction_at_k",
    "SatisfactionBreakdown",
    "cosine_similarity_matrix",
    "offdiagonal_mean",
    "smoothing_report",
]
