"""Spans and tracers: the request-scoped telemetry core of ``repro.obs``.

A **span** is one named, timed operation (a request, a batch flush, a
pipeline stage, a training epoch); a **trace** is the tree of spans that
served one logical unit of work, stitched together by IDs:

* ``trace_id`` (16 hex chars) names the whole tree and travels across
  process boundaries in the ``X-Repro-Trace`` HTTP header;
* ``span_id`` (8 hex chars) names one span inside the trace;
* ``parent_id`` links a child span to its parent (``None`` for roots).

IDs are **deterministic**: each :class:`Tracer` derives them from its
seed and a monotone counter, never from ``uuid4`` — two runs with the
same seed and call order mint the same IDs, which is what lets the
chaos/replay suites assert on exact traces.

Context propagation is two-level:

* **within a process** — a module-level ``threading.local`` stack holds
  the *active* span per thread; ``tracer.span(...)`` used as a context
  manager pushes/pops it, and a span started with no explicit parent
  adopts the active span.  Cross-thread handoff is explicit: pass
  ``span.context()`` (a :class:`SpanContext`) to the other thread.
* **across processes** — :func:`format_header` / :func:`parse_header`
  carry ``trace_id/span_id`` through ``X-Repro-Trace``; the gateway
  accepts the header on requests and emits the request's trace id on
  responses, so a client, the pre-fork parent, and the worker that
  served the request all agree on one trace.

Finished spans land in a bounded in-memory ring (newest win) and,
optionally, a JSONL sink (:class:`repro.obs.log.JsonlSink`).  Export to
Chrome ``trace_event`` JSON — loadable in Perfetto / ``chrome://tracing``
— is :func:`chrome_trace`; :func:`spans_from_chrome` is its inverse
(round-trip tested).

Sampling: ``Tracer(sample=0.0)`` (the default) records nothing and the
per-request cost is one float comparison — safe for the benchmark
suite.  A request that *arrives* with an ``X-Repro-Trace`` header is
always sampled (client-driven targeted tracing), whatever the rate.

Chaos integration: importing this module registers a hook with
:mod:`repro.chaos` so every armed failpoint hit annotates the active
span with a ``chaos`` event — degraded-mode incidents leave a causal
trail inside the request trace that suffered them.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from .. import chaos

#: The HTTP header carrying ``<trace_id>-<span_id>`` across processes.
TRACE_HEADER = "X-Repro-Trace"

#: Environment knobs read by :func:`get_tracer` (the process-global
#: default tracer used by pipeline/training instrumentation).
SAMPLE_ENV = "REPRO_TRACE_SAMPLE"
RING_ENV = "REPRO_TRACE_RING"
LOG_ENV = "REPRO_TRACE_LOG"

_TRACE_ID_LEN = 16
_SPAN_ID_LEN = 8

#: Per-thread stack of active spans (module-level so chaos annotations
#: and nested tracers agree on "the current span" regardless of which
#: Tracer instance started it).
_ACTIVE = threading.local()


def _active_stack() -> List["Span"]:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = []
        _ACTIVE.stack = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, or ``None``."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str


def format_header(ctx: Union["Span", SpanContext]) -> str:
    """``X-Repro-Trace`` value for a span or context."""
    return f"{ctx.trace_id}-{ctx.span_id}"


def parse_header(value: Optional[str]) -> Optional[SpanContext]:
    """Parse an ``X-Repro-Trace`` value; ``None`` for absent/malformed.

    Malformed headers are *dropped*, not rejected: tracing is telemetry,
    and a bad header must never turn into a client-visible 400.
    """
    if not value:
        return None
    value = value.strip()
    trace_id, sep, span_id = value.partition("-")
    if not sep:
        # A bare trace id is accepted (no parent span): the request
        # still joins the caller's trace, rooted at the gateway.
        trace_id, span_id = value, ""
    if len(trace_id) != _TRACE_ID_LEN:
        return None
    if span_id and len(span_id) != _SPAN_ID_LEN:
        return None
    try:
        int(trace_id, 16)
        if span_id:
            int(span_id, 16)
    except ValueError:
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id)


class Span:
    """One named, timed operation inside a trace.

    Created via :meth:`Tracer.span` / :meth:`Tracer.start_span`; used
    either as a context manager (activates on this thread, ends on
    exit) or manually (``span.end()``).  Attributes are JSON-safe
    key/values; events are timestamped point annotations (chaos hits,
    registry swaps) attached to the span they happened under.
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "start_wall", "start_perf", "duration_s", "pid", "tid",
        "attrs", "events", "_activated",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.duration_s: Optional[float] = None
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.events: List[Dict[str, Any]] = []
        self._activated = False

    # ------------------------------------------------------------------
    def context(self) -> SpanContext:
        """The propagatable ``(trace_id, span_id)`` of this span."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, key: str, value: Any) -> "Span":
        """Attach one JSON-safe attribute; returns self for chaining."""
        self.attrs[key] = value
        return self

    def event(self, name: str, **fields: Any) -> None:
        """Record a point-in-time annotation on this span."""
        self.events.append(
            {
                "name": name,
                "offset_s": round(time.perf_counter() - self.start_perf, 9),
                **fields,
            }
        )

    def end(self) -> None:
        """Finish the span and hand it to the tracer's sinks (idempotent)."""
        if self.duration_s is not None:
            return
        self.duration_s = time.perf_counter() - self.start_perf
        self.tracer._finish(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        _active_stack().append(self)
        self._activated = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        stack = _active_stack()
        if self._activated and stack and stack[-1] is self:
            stack.pop()
        self._activated = False
        self.end()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (the ring/JSONL/export schema)."""
        return {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start_wall,
            "dur_s": self.duration_s if self.duration_s is not None else 0.0,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id})"
        )


class Tracer:
    """Mint spans, decide sampling, and keep the finished-span ring.

    Args:
        sample: fraction of roots to trace (0.0 = off, 1.0 = all).
            Requests carrying an ``X-Repro-Trace`` parent are sampled
            regardless (client-driven tracing).
        ring_size: bounded count of finished spans kept in memory (the
            ``GET /v1/trace`` window); oldest spans fall off.
        seed: drives both the deterministic ID sequence and the
            sampling draw — same seed + call order = same trace.
        service: logical name stamped into Chrome exports.
        sink: optional object with a ``write(dict)`` method (e.g.
            :class:`repro.obs.log.JsonlSink`) receiving every finished
            span.

    Thread-safe: spans are minted and finished from request threads,
    the batch flusher, and watcher threads concurrently.
    """

    def __init__(
        self,
        sample: float = 0.0,
        ring_size: int = 512,
        seed: int = 0,
        service: str = "repro",
        sink: Optional[Any] = None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.sample = sample
        self.ring_size = ring_size
        self.seed = seed
        self.service = service
        self.sink = sink
        self._counter = itertools.count(1)
        # Deterministic sampling: a seeded accumulator, not an RNG —
        # rate 0.25 samples exactly every 4th root, replayably.
        self._accum = float(seed % 997) / 997.0
        self._ring: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        # 8 hex chars of (pid, seed): trace ids minted by different
        # processes of one pool never collide, yet stay reproducible
        # for a fixed pid + seed.
        self._id_base = f"{(os.getpid() ^ (seed << 16)) & 0xFFFFFFFF:08x}"

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether unsolicited (non-header) sampling can ever fire."""
        return self.sample > 0.0

    def sample_decision(self) -> bool:
        """Deterministic rate-``sample`` decision for a new root."""
        if self.sample <= 0.0:
            return False
        if self.sample >= 1.0:
            return True
        with self._lock:
            self._accum += self.sample
            if self._accum >= 1.0:
                self._accum -= 1.0
                return True
            return False

    def _new_trace_id(self) -> str:
        return f"{self._id_base}{next(self._counter) & 0xFFFFFFFF:08x}"

    def _new_span_id(self) -> str:
        return f"{next(self._counter) & 0xFFFFFFFF:08x}"

    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Mint a started span (not activated on the thread).

        Parent resolution: an explicit ``parent`` wins; otherwise the
        thread's active span; otherwise the span roots a fresh trace.
        """
        if parent is None:
            parent = current_span()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id or None
        else:
            trace_id = self._new_trace_id()
            parent_id = None
        return Span(self, name, trace_id, self._new_span_id(), parent_id, attrs)

    def span(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """:meth:`start_span`, intended for ``with tracer.span(...)``."""
        return self.start_span(name, parent=parent, attrs=attrs)

    def record_child(
        self,
        parent: Span,
        name: str,
        perf_start: float,
        perf_end: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record a finished child span from two ``perf_counter`` stamps.

        The hot-path shape: the gateway measures phase boundaries with
        plain float stamps while the request runs, then — only for
        sampled requests — materializes the child spans after the fact.
        Wall-clock start is derived from the parent's, so exported
        timelines line up.
        """
        child = Span(
            self, name, parent.trace_id, self._new_span_id(),
            parent.span_id, attrs,
        )
        child.tid = parent.tid
        child.start_wall = parent.start_wall + (perf_start - parent.start_perf)
        child.start_perf = perf_start
        child.duration_s = max(0.0, perf_end - perf_start)
        self._finish(child)
        return child

    def instant(self, name: str, **fields: Any) -> None:
        """Record a zero-duration span (registry swaps, quarantines).

        Attached to the thread's active trace when there is one, else a
        root of its own.  Dropped entirely when the tracer is disabled —
        instants are unsolicited, so they obey the sample switch.
        """
        if not self.enabled:
            return
        span = self.start_span(name, attrs=fields)
        span.duration_s = 0.0
        self._finish(span)

    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._ring.append(record)
            if len(self._ring) > self.ring_size:
                del self._ring[: len(self._ring) - self.ring_size]
        if self.sink is not None:
            try:
                self.sink.write(record)
            except OSError:
                pass  # telemetry must never fail the traced operation

    def drain(
        self,
        limit: Optional[int] = None,
        trace_id: Optional[str] = None,
        clear: bool = False,
    ) -> List[Dict[str, Any]]:
        """Finished spans, oldest first, optionally filtered/bounded."""
        with self._lock:
            spans = list(self._ring)
            if clear:
                self._ring.clear()
        if trace_id is not None:
            spans = [s for s in spans if s["trace"] == trace_id]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(sample={self.sample}, ring_size={self.ring_size}, "
            f"spans={len(self._ring)})"
        )


# ----------------------------------------------------------------------
# Chrome trace_event export (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace(
    spans: Iterable[Dict[str, Any]], service: str = "repro"
) -> Dict[str, Any]:
    """Span dicts -> Chrome ``trace_event`` JSON (object form).

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur``; per-pid ``process_name`` metadata events
    make Perfetto label the tracks.  The span identity rides in
    ``args`` so :func:`spans_from_chrome` can invert the export.
    """
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, bool] = {}
    for span in spans:
        pid = int(span.get("pid", 0))
        if pid not in seen_pids:
            seen_pids[pid] = True
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{service} pid {pid}"},
                }
            )
        events.append(
            {
                "name": span["name"],
                "cat": service,
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": max(0.0, span.get("dur_s") or 0.0) * 1e6,
                "pid": pid,
                "tid": int(span.get("tid", 0)),
                "args": {
                    "trace": span["trace"],
                    "span": span["span"],
                    "parent": span.get("parent"),
                    "attrs": span.get("attrs", {}),
                    "events": span.get("events", []),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Inverse of :func:`chrome_trace` (metadata events are skipped)."""
    spans: List[Dict[str, Any]] = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        spans.append(
            {
                "name": event["name"],
                "trace": args.get("trace"),
                "span": args.get("span"),
                "parent": args.get("parent"),
                "start": event["ts"] / 1e6,
                "dur_s": event.get("dur", 0.0) / 1e6,
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "attrs": args.get("attrs", {}),
                "events": args.get("events", []),
            }
        )
    return spans


# ----------------------------------------------------------------------
# Process-global default tracer (pipeline / training instrumentation)
# ----------------------------------------------------------------------
_default_lock = threading.Lock()
_default: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-global tracer, built once from the environment.

    ``REPRO_TRACE_SAMPLE`` (float, default 0 = off), ``REPRO_TRACE_RING``
    (int) and ``REPRO_TRACE_LOG`` (JSONL path) configure it; with the
    default environment it is a disabled tracer whose only cost is the
    ``enabled`` check at each instrumentation site.  The gateway does
    *not* use this — it builds its own from :class:`ServerConfig`.
    """
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                sample = float(os.environ.get(SAMPLE_ENV, "0") or "0")
                ring = int(os.environ.get(RING_ENV, "512") or "512")
                sink = None
                log_path = os.environ.get(LOG_ENV)
                if log_path:
                    from .log import JsonlSink

                    sink = JsonlSink(log_path)
                _default = Tracer(
                    sample=max(0.0, min(1.0, sample)), ring_size=ring, sink=sink
                )
    return _default


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Replace the process-global tracer; returns the previous one.

    ``None`` makes the next :func:`get_tracer` re-read the environment.
    The pipeline runner uses the returned value to restore whatever was
    installed before it scoped its own run tracer in.
    """
    global _default
    with _default_lock:
        previous = _default
        _default = tracer
    return previous


# ----------------------------------------------------------------------
# Chaos -> span annotation
# ----------------------------------------------------------------------
def _chaos_annotation(point: str, action: str) -> None:
    """Annotate the active span with an armed failpoint hit."""
    span = current_span()
    if span is not None:
        span.event("chaos", point=point, action=action)


chaos.annotation_hook = _chaos_annotation
