"""Implementation of the ``repro trace`` subcommand.

Registered by :mod:`repro.pipeline.cli`; operates on spans from either
a file (``--input``: JSONL span records, a Chrome ``trace_event``
export, or a run manifest with an embedded ``trace``) or a live gateway
(``--url http://host:port`` → ``GET /v1/trace``).

Three verbs::

    repro trace summary  --input spans.jsonl     # per-name latency stats
    repro trace slowest  --url http://host:8377  # span-tree timelines
    repro trace export   --input spans.jsonl -o trace.json   # Perfetto

``export`` writes Chrome ``trace_event`` JSON through
:func:`repro.atomicio.atomic_write_json` (failpoint site
``trace.export``), so a crash mid-export never leaves a torn file.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import atomicio
from .trace import chrome_trace, spans_from_chrome

Span = Dict[str, Any]


# ----------------------------------------------------------------------
# Span loading
# ----------------------------------------------------------------------
def load_spans_file(path: Path) -> List[Span]:
    """Spans from JSONL, a Chrome export, or a run manifest."""
    text = path.read_text(encoding="utf-8")
    # A JSONL file of span records *also* starts with "{" — only treat
    # the text as one document if it actually parses as one.
    document = None
    if text.lstrip().startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None  # multi-line JSONL: fall through
    if isinstance(document, dict):
        if "traceEvents" in document:
            return spans_from_chrome(document)
        if "spans" in document:  # GET /v1/trace payload saved to disk
            return list(document["spans"])
        if "trace" in document:  # run manifest with embedded trace
            return list(document["trace"] or [])
        raise ValueError(f"{path}: JSON object holds no recognizable spans")
    spans: List[Span] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line of an append-mode sink
            raise
    return spans


def fetch_spans(url: str, timeout: float = 5.0) -> List[Span]:
    """Spans from a live gateway's ``GET /v1/trace``."""
    endpoint = url.rstrip("/") + "/v1/trace?format=spans"
    with urllib.request.urlopen(endpoint, timeout=timeout) as response:
        payload = json.loads(response.read().decode("utf-8"))
    return list(payload.get("spans", []))


def _load(args: argparse.Namespace) -> List[Span]:
    if args.input:
        return load_spans_file(Path(args.input))
    if args.url:
        return fetch_spans(args.url)
    raise SystemExit("error: provide --input FILE or --url http://host:port")


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def summarize(spans: List[Span]) -> str:
    """Per-name count / total / p50 / p99 / max table, slowest first."""
    by_name: Dict[str, List[float]] = defaultdict(list)
    traces = set()
    for span in spans:
        by_name[span.get("name", "?")].append(float(span.get("dur_s") or 0.0))
        traces.add(span.get("trace"))
    if not by_name:
        return "no spans"
    lines = [
        f"{len(spans)} span(s) across {len(traces)} trace(s)",
        "",
        f"{'name':<28} {'count':>6} {'total_ms':>10} {'p50_ms':>8} "
        f"{'p99_ms':>8} {'max_ms':>8}",
    ]
    rows = []
    for name, durations in by_name.items():
        durations.sort()
        rows.append(
            (
                sum(durations),
                f"{name:<28} {len(durations):>6} {sum(durations) * 1e3:>10.2f} "
                f"{_percentile(durations, 0.5) * 1e3:>8.2f} "
                f"{_percentile(durations, 0.99) * 1e3:>8.2f} "
                f"{durations[-1] * 1e3:>8.2f}",
            )
        )
    rows.sort(key=lambda row: -row[0])
    lines.extend(row[1] for row in rows)
    return "\n".join(lines)


def _trace_tree(spans: List[Span]) -> List[str]:
    """ASCII timeline of one trace's span tree, children indented."""
    by_id = {span["span"]: span for span in spans}
    children: Dict[Optional[str], List[Span]] = defaultdict(list)
    for span in spans:
        parent = span.get("parent")
        children[parent if parent in by_id else None].append(span)
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: s.get("start", 0.0))
    roots = children.get(None, [])
    origin = min((s.get("start", 0.0) for s in spans), default=0.0)
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        offset_ms = (span.get("start", 0.0) - origin) * 1e3
        dur_ms = (span.get("dur_s") or 0.0) * 1e3
        indent = "  " * depth
        pid = span.get("pid", "?")
        chaos_hits = [e for e in span.get("events", []) if e.get("name") == "chaos"]
        suffix = f"  [chaos x{len(chaos_hits)}]" if chaos_hits else ""
        lines.append(
            f"  {indent}{span['name']:<{max(1, 30 - 2 * depth)}} "
            f"+{offset_ms:8.2f}ms  {dur_ms:8.2f}ms  pid {pid}{suffix}"
        )
        for child in children.get(span["span"], []):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return lines


def slowest(spans: List[Span], n: int) -> str:
    """The ``n`` slowest traces (by root span duration) as span trees."""
    by_trace: Dict[str, List[Span]] = defaultdict(list)
    for span in spans:
        if span.get("trace"):
            by_trace[span["trace"]].append(span)

    def root_duration(trace_spans: List[Span]) -> float:
        ids = {s["span"] for s in trace_spans}
        roots = [s for s in trace_spans if s.get("parent") not in ids]
        return max((float(s.get("dur_s") or 0.0) for s in roots), default=0.0)

    ranked = sorted(by_trace.items(), key=lambda kv: -root_duration(kv[1]))
    if not ranked:
        return "no traces"
    lines: List[str] = []
    for trace_id, trace_spans in ranked[:n]:
        pids = sorted({s.get("pid", 0) for s in trace_spans})
        lines.append(
            f"trace {trace_id}  root {root_duration(trace_spans) * 1e3:.2f}ms  "
            f"{len(trace_spans)} span(s)  pid(s) {pids}"
        )
        lines.extend(_trace_tree(trace_spans))
        lines.append("")
    return "\n".join(lines).rstrip()


def export(spans: List[Span], output: Path) -> None:
    """Write Chrome ``trace_event`` JSON, crash-safe."""
    atomicio.atomic_write_json(
        output, chrome_trace(spans), site="trace.export", indent=2
    )


# ----------------------------------------------------------------------
# argparse wiring (called from repro.pipeline.cli)
# ----------------------------------------------------------------------
def add_trace_parser(sub: argparse._SubParsersAction) -> None:
    """Register ``repro trace`` on the top-level subparser action."""
    trace = sub.add_parser(
        "trace", help="inspect and export repro.obs traces"
    )
    verbs = trace.add_subparsers(dest="trace_command", required=True)
    for verb, help_text in (
        ("summary", "per-span-name latency statistics"),
        ("slowest", "span-tree timelines of the slowest traces"),
        ("export", "write Chrome trace_event JSON for Perfetto"),
    ):
        p = verbs.add_parser(verb, help=help_text)
        p.add_argument(
            "--input", default=None, metavar="FILE",
            help="span source: JSONL sink, Chrome export, manifest, or a "
            "saved /v1/trace payload",
        )
        p.add_argument(
            "--url", default=None, metavar="URL",
            help="live gateway base URL (GET /v1/trace)",
        )
        if verb == "slowest":
            p.add_argument("-n", type=int, default=5, help="traces to show")
        if verb == "export":
            p.add_argument(
                "-o", "--output", required=True, metavar="FILE",
                help="output path for the Chrome trace JSON",
            )


def cmd_trace(args: argparse.Namespace) -> int:
    spans = _load(args)
    if args.trace_command == "summary":
        print(summarize(spans))
        return 0
    if args.trace_command == "slowest":
        print(slowest(spans, max(1, args.n)))
        return 0
    output = Path(args.output)
    export(spans, output)
    print(f"wrote {len(spans)} span(s) to {output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry (``python -m repro.obs.cli summary ...``)."""
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="inspect and export repro.obs traces"
    )
    sub = parser.add_subparsers(dest="trace_command", required=True)
    for verb, help_text in (
        ("summary", "per-span-name latency statistics"),
        ("slowest", "span-tree timelines of the slowest traces"),
        ("export", "write Chrome trace_event JSON for Perfetto"),
    ):
        p = sub.add_parser(verb, help=help_text)
        p.add_argument("--input", default=None, metavar="FILE")
        p.add_argument("--url", default=None, metavar="URL")
        if verb == "slowest":
            p.add_argument("-n", type=int, default=5)
        if verb == "export":
            p.add_argument("-o", "--output", required=True, metavar="FILE")
    return cmd_trace(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
