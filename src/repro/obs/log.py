"""Structured logging and the JSONL span sink for ``repro.obs``.

Two pieces, both stdlib-only:

* :class:`StructLogger` / :func:`get_logger` — the replacement for bare
  ``print(..., file=sys.stderr)`` in library code.  One JSON object per
  line (``ts``, ``level``, ``logger``, ``event`` plus free-form fields),
  so supervisor incidents (worker exits, kill-on-drain-timeout) are
  machine-parseable instead of format-string archaeology.  Enforced by
  ``tools/lint_no_print.py``.
* :class:`JsonlSink` — an append-only, size-rotated JSONL file that a
  :class:`~repro.obs.trace.Tracer` can write every finished span to.
  Appends are flushed per-record; rotation goes through ``os.replace``
  so a crash leaves either the old or the new generation, never a
  half-renamed file.  A torn final line (the crash case for appends,
  which cannot be atomic) is tolerated by :func:`read_jsonl`.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

PathLike = Union[str, Path]

_LEVELS = ("debug", "info", "warning", "error")


class StructLogger:
    """Emit one JSON object per line to a stream (default stderr).

    Cheap enough to construct ad hoc, but prefer :func:`get_logger` so
    repeated lookups share instances.  Serialization falls back to
    ``str()`` for non-JSON values — a log call must never raise.
    """

    def __init__(self, name: str, stream: Optional[TextIO] = None) -> None:
        self.name = name
        self._stream = stream

    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            stream.write(json.dumps(record, default=str) + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # logging must never take the process down

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


_loggers: Dict[str, StructLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructLogger:
    """Shared :class:`StructLogger` for ``name`` (stderr-backed)."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructLogger(name)
            _loggers[name] = logger
        return logger


class JsonlSink:
    """Append-only JSONL file with size-based rotation.

    Args:
        path: the live file; rotated generations are ``<path>.1`` ..
            ``<path>.<backups>`` (newest first).
        max_bytes: rotate when the live file would exceed this
            (0 disables rotation).
        backups: rotated generations to keep.

    Appends are serialized under a lock and flushed per record — the
    most a crash can lose is the final, possibly torn, line.  Rotation
    renames via ``os.replace`` (atomic on POSIX), shifting generations
    oldest-last so ``<path>`` always names the newest data.
    """

    def __init__(
        self, path: PathLike, max_bytes: int = 8 * 1024 * 1024, backups: int = 2
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if backups < 1:
            raise ValueError("backups must be >= 1")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._fh: Optional[io.TextIOWrapper] = None
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def _open(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _rotate_locked(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None
        for gen in range(self.backups - 1, 0, -1):
            older = self.path.with_name(f"{self.path.name}.{gen}")
            newer = self.path.with_name(f"{self.path.name}.{gen + 1}")
            if older.exists():
                os.replace(older, newer)
        if self.path.exists():
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record, rotating first if the file is full."""
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            if (
                self.max_bytes
                and self.path.exists()
                and self.path.stat().st_size + len(line) > self.max_bytes
            ):
                self._rotate_locked()
            fh = self._open()
            fh.write(line)
            fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load a JSONL file, tolerating a torn (crash-truncated) final line.

    A decode error anywhere but the last line is a real corruption and
    propagates; only the final line may legitimately be torn, because
    appends are not atomic.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line: the crash-window artifact
            raise
    return records
