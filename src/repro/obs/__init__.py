"""``repro.obs`` — unified tracing and structured telemetry.

The observability layer of the reproduction: deterministic spans from
the HTTP edge down to the scoring kernel, a structured (JSONL) logger
replacing bare prints in library code, and export paths into Perfetto
and the run manifests.  Stdlib-only; see ``docs/observability.md``.

Public surface:

* :class:`Tracer`, :class:`Span`, :class:`SpanContext` — the span API
  (:mod:`repro.obs.trace`);
* :data:`TRACE_HEADER`, :func:`parse_header`, :func:`format_header` —
  cross-process propagation via ``X-Repro-Trace``;
* :func:`get_tracer` / :func:`set_tracer` — the env-configured
  process-global tracer used by pipeline and training instrumentation;
* :func:`current_span` — the thread's active span (chaos annotations);
* :func:`chrome_trace` / :func:`spans_from_chrome` — Chrome
  ``trace_event`` export and its inverse;
* :func:`get_logger`, :class:`StructLogger`, :class:`JsonlSink`,
  :func:`read_jsonl` — structured logging (:mod:`repro.obs.log`).
"""

from .log import JsonlSink, StructLogger, get_logger, read_jsonl
from .trace import (
    TRACE_HEADER,
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
    current_span,
    format_header,
    get_tracer,
    parse_header,
    set_tracer,
    spans_from_chrome,
)

__all__ = [
    "TRACE_HEADER",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "current_span",
    "format_header",
    "get_tracer",
    "parse_header",
    "set_tracer",
    "spans_from_chrome",
    "JsonlSink",
    "StructLogger",
    "get_logger",
    "read_jsonl",
]
