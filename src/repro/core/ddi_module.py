"""The Drug-Drug Interaction module (Sec. IV-A).

Trains DDIGCN — a GNN over the signed DDI graph — as an *edge regressor*:
the inner product of two drug embeddings must match the edge sign
(+1 synergy, -1 antagonism, 0 sampled no-interaction), Eq. 5-6.  The
learned drug relation embeddings are shared with the MD module.

Backbones: GIN (Eq. 1), SGCN (Eq. 2-4), SiGAT, SNEA — selected by config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.ddi import add_no_interaction_edges
from ..gnn import (
    GINEncoder,
    SGCNEncoder,
    SiGATEncoder,
    SNEAEncoder,
    interaction_mean_adjacency,
    signed_edge_arrays,
    signed_mean_adjacencies,
)
from ..graph import SignedGraph
from ..nn import Adam, Tensor, gather_rows, mse_loss
from ..train import Callback, TrainState, Trainer, TrainingLog, fit_or_resume
from .config import DDIGCNConfig


@dataclass
class DDITrainingLog:
    """Loss trace of DDIGCN training."""

    losses: List[float]
    #: The underlying engine log (epochs run, wall time, resume info).
    train: TrainingLog = field(default_factory=TrainingLog)

    @property
    def final_loss(self) -> float:
        """Loss of the last training epoch."""
        return self.losses[-1]


class DDIModule:
    """Learn drug relation embeddings from the signed DDI graph.

    Usage::

        module = DDIModule(config)
        log = module.fit(ddi_graph)
        z = module.drug_embeddings()   # (num_drugs, hidden_dim)
    """

    def __init__(self, config: Optional[DDIGCNConfig] = None) -> None:
        self.config = config or DDIGCNConfig()
        self.config.validate()
        self._encoder = None
        self._graph: Optional[SignedGraph] = None
        self._embeddings: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        graph: SignedGraph,
        callbacks: Sequence[Callback] = (),
        checkpoint_dir=None,
        checkpoint_every: int = 0,
    ) -> DDITrainingLog:
        """Train DDIGCN on ``graph`` and cache the final embeddings.

        ``callbacks`` extend the :class:`repro.train.Trainer` loop (early
        stopping, loss logging, ...).  With ``checkpoint_dir`` set the
        run checkpoints every ``checkpoint_every`` epochs (every epoch
        when left at 0) and resumes from an existing checkpoint instead
        of restarting.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        # Sec. IV-A1: augment with explicit "no interaction" edges.
        train_graph = add_no_interaction_edges(graph, cfg.zero_edge_ratio, rng)
        self._graph = train_graph
        n = train_graph.num_nodes

        # One-hot ID embeddings as original features (Sec. IV-A1).
        features = Tensor(np.eye(n))

        encoder, forward = self._build_encoder(train_graph, rng)
        self._encoder = encoder
        self._forward = forward

        src, dst, sign_ints = train_graph.edge_arrays()
        signs = Tensor(sign_ints.astype(np.float64))

        def step(state: TrainState, _batch) -> Tensor:
            z = forward(features)
            # Eq. 5: edge score as inner product of endpoint embeddings.
            scores = (gather_rows(z, src) * gather_rows(z, dst)).sum(axis=1)
            return mse_loss(scores, signs)  # Eq. 6

        state = TrainState(
            encoder.parameters(),
            Adam(encoder.parameters(), lr=cfg.learning_rate),
            rng,
        )
        log = fit_or_resume(
            Trainer(cfg.epochs),
            step,
            state,
            callbacks=callbacks,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )

        encoder.eval()
        self._embeddings = forward(features).numpy().copy()
        encoder.train()
        return DDITrainingLog(losses=log.losses, train=log)

    # ------------------------------------------------------------------
    def _build_encoder(self, graph: SignedGraph, rng: np.random.Generator):
        """Instantiate the configured backbone and a closure running it."""
        cfg = self.config
        n = graph.num_nodes
        if cfg.backbone == "gin":
            adjacency = interaction_mean_adjacency(
                graph, include_zero=True, backend=cfg.propagation_backend
            )
            encoder = GINEncoder(n, cfg.hidden_dim, cfg.num_layers, rng)
            return encoder, lambda x: encoder(x, adjacency)
        if cfg.backbone == "sgcn":
            pos, neg = signed_mean_adjacencies(
                graph, backend=cfg.propagation_backend
            )
            encoder = SGCNEncoder(n, cfg.hidden_dim, cfg.num_layers, rng)
            return encoder, lambda x: encoder(x, pos, neg)
        if cfg.backbone == "sigat":
            src, dst, signs = signed_edge_arrays(graph)
            encoder = SiGATEncoder(n, cfg.hidden_dim, cfg.num_layers, rng)
            return encoder, lambda x: encoder(x, src, dst, signs, n)
        if cfg.backbone == "snea":
            src, dst, signs = signed_edge_arrays(graph)
            encoder = SNEAEncoder(n, cfg.hidden_dim, cfg.num_layers, rng)
            return encoder, lambda x: encoder(x, src, dst, signs, n)
        raise ValueError(f"unknown backbone {cfg.backbone!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def drug_embeddings(self) -> np.ndarray:
        """The learned (num_drugs, hidden_dim) relation embeddings."""
        if self._embeddings is None:
            raise RuntimeError("call fit() before drug_embeddings()")
        return self._embeddings

    def edge_scores(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        """Predicted interaction scores for drug pairs (Eq. 5)."""
        z = self.drug_embeddings()
        return np.array([float(z[u] @ z[v]) for u, v in pairs])
