"""DDI-aware re-ranking of suggestion lists (extension).

The paper's case studies (Fig. 9) show DDI knowledge moving individual
drugs up or down the ranking through learned embeddings.  This module adds
the natural *decision-layer* counterpart: given any method's scores, pick
the top-k set greedily while (a) skipping drugs antagonistic to already
selected ones unless their score dominates, and (b) boosting drugs
synergistic with the current selection.

This is an extension beyond the paper (its suggestions are pure score
top-k); the ablation benchmark shows the trade-off it buys: higher
Suggestion Satisfaction at a small ranking-metric cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graph import SignedGraph


@dataclass
class RerankConfig:
    """Greedy selection knobs.

    Attributes:
        synergy_bonus: additive score bonus per synergistic edge to the
            already-selected set.
        antagonism_penalty: additive penalty per antagonistic edge; a drug
            is skipped while penalized below the next candidate.
        hard_exclude: if True, antagonistic candidates are skipped outright
            (unless no clean candidate remains).
    """

    synergy_bonus: float = 0.05
    antagonism_penalty: float = 0.2
    hard_exclude: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range knobs."""
        if self.synergy_bonus < 0 or self.antagonism_penalty < 0:
            raise ValueError("bonus and penalty must be non-negative")


def rerank_topk(
    scores: np.ndarray,
    ddi: SignedGraph,
    k: int,
    config: Optional[RerankConfig] = None,
) -> np.ndarray:
    """Greedy DDI-aware top-k per patient.

    Args:
        scores: (num_patients, num_drugs) suggestion scores.
        ddi: signed DDI graph over the drugs.
        k: suggestion size.
        config: greedy knobs (defaults are conservative).

    Returns:
        (num_patients, k) int array of selected drug ids, best first.
    """
    config = config or RerankConfig()
    config.validate()
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D")
    num_patients, num_drugs = scores.shape
    if not 1 <= k <= num_drugs:
        raise ValueError(f"k must be in [1, {num_drugs}]")
    if ddi.num_nodes != num_drugs:
        raise ValueError("DDI graph size must match the number of drugs")

    out = np.empty((num_patients, k), dtype=np.int64)
    for i in range(num_patients):
        out[i] = _greedy_select(scores[i], ddi, k, config)
    return out


def _greedy_select(
    row: np.ndarray, ddi: SignedGraph, k: int, config: RerankConfig
) -> List[int]:
    adjusted = row.copy()
    selected: List[int] = []
    available = set(range(len(row)))
    while len(selected) < k:
        best = max(available, key=lambda d: adjusted[d])
        if config.hard_exclude and selected:
            conflict = any(ddi.sign_or_none(best, s) == -1 for s in selected)
            clean = [
                d
                for d in available
                if not any(ddi.sign_or_none(d, s) == -1 for s in selected)
            ]
            if conflict and clean:
                best = max(clean, key=lambda d: adjusted[d])
        selected.append(best)
        available.discard(best)
        # Update neighbours of the newly selected drug.
        for neighbor in ddi.neighbors(best):
            if neighbor not in available:
                continue
            sign = ddi.sign(best, neighbor)
            if sign == 1:
                adjusted[neighbor] += config.synergy_bonus
            elif sign == -1:
                adjusted[neighbor] -= config.antagonism_penalty
    return selected


def antagonism_count(selection: Sequence[int], ddi: SignedGraph) -> int:
    """Number of antagonistic pairs inside one suggestion set."""
    selection = list(selection)
    count = 0
    for idx, u in enumerate(selection):
        for v in selection[idx + 1 :]:
            if ddi.sign_or_none(u, v) == -1:
                count += 1
    return count
