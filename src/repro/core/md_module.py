"""The Medical Decision module (Sec. IV-B).

MDGCN has an encoder and a decoder:

* **Encoder** (Eq. 9-13): two FC layers with LeakyReLU map patients and
  drugs to a shared space; LightGCN-style propagation (no transforms, no
  nonlinearity) over the patient-drug bipartite graph updates the drug
  representations with layer combination beta_t = 1/(t+2).  Crucially the
  *patient* representation used by the decoder is the one **before**
  propagation — this avoids the over-smoothing of patient representations
  the paper demonstrates in Fig. 7.
* The DDI relation embeddings learned by the DDI module are added to the
  final drug representation: h'_v := h'_v + z_v.
* **Decoder** (Eq. 14-15): an MLP over [h_i ⊙ h'_v, T_iv] predicts the
  link probability; the same decoder with the counterfactual treatment
  T^CF predicts the counterfactual outcome.
* **Training** (Eq. 16-18): BCE on factual links (1:1 negative sampling)
  plus delta times BCE on counterfactual links.

Inference for *unobserved* patients re-derives their treatment row from
the fitted K-means clustering and the DDI synergy propagation, then scores
every drug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..causal import build_counterfactual_links, build_treatment, suggest_gammas
from ..gnn import (
    LightGCNPropagation,
    bipartite_propagation,
    default_layer_weights,
    synergy_adjacency,
)
from ..graph import BipartiteGraph, SignedGraph
from ..ml import KMeansResult, kmeans
from ..nn import (
    Adam,
    Linear,
    MLP,
    Module,
    Tensor,
    bce_with_logits,
    concat,
    gather_rows,
)
from ..nn import sparse as sparse_backend
from ..nn.fused import can_fuse_pair_mlp, pair_interaction_logits
from ..train import (
    Callback,
    PairBatch,
    PairNegativeSampler,
    TrainState,
    Trainer,
    TrainingLog,
    fit_or_resume,
)
from .config import MDGCNConfig


@dataclass
class MDTrainingLog:
    """Loss traces of MDGCN training."""

    factual_losses: List[float]
    counterfactual_losses: List[float]
    cf_match_rate: float
    #: The underlying engine log (epochs run, wall time, resume info).
    train: TrainingLog = field(default_factory=TrainingLog)

    @property
    def final_loss(self) -> float:
        """Factual BCE of the last training epoch."""
        return self.factual_losses[-1]


class MDModule:
    """Medication-suggestion model with counterfactual augmentation.

    Usage::

        module = MDModule(config)
        module.fit(x_train, y_train, drug_features, ddi_graph, ddi_embeddings)
        scores = module.predict_scores(x_test)     # (n_test, num_drugs)
    """

    def __init__(self, config: Optional[MDGCNConfig] = None) -> None:
        self.config = config or MDGCNConfig()
        self.config.validate()
        self._fitted = False
        self._reset_caches()

    def _reset_caches(self) -> None:
        """Drop the fit-derived hot-path caches (factors, drug reps)."""
        self._factor_cache: Optional[Tuple[np.ndarray, object]] = None
        self._drug_reps_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        patient_features: np.ndarray,
        medication_use: np.ndarray,
        drug_features: np.ndarray,
        ddi_graph: SignedGraph,
        ddi_embeddings: Optional[np.ndarray],
        num_clusters: Optional[int] = None,
        callbacks: Sequence[Callback] = (),
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_extra=None,
    ) -> MDTrainingLog:
        """Train MDGCN on the observed patients.

        Args:
            patient_features: (m, d1) observed patient features (standardized).
            medication_use: (m, n) binary matrix Y of observed links.
            drug_features: (n, d2) original drug features z_v (mode-dependent:
                DRKG embeddings, one-hot, or DDIGCN output).
            ddi_graph: signed DDI graph (treatment propagation + negatives).
            ddi_embeddings: (n, hidden) DDIGCN relation embeddings added to
                the final drug representation; None disables the addition
                (the "w/o DDI" ablation).
            num_clusters: K for the treatment clustering; defaults to the
                config value or 10 (the paper's count of chronic diseases).
            callbacks: extra :class:`repro.train.Callback` hooks for the
                Trainer loop (early stopping, loss logging, ...).
            checkpoint_dir: when set, checkpoint every
                ``checkpoint_every`` epochs (every epoch when left at
                0) and resume from an existing checkpoint instead of
                restarting.
            checkpoint_extra: optional ``writer(dir)`` invoked inside
                each atomic checkpoint write (DSSDDI embeds a servable
                artifact snapshot through this).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        x = np.asarray(patient_features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.int64)
        z = np.asarray(drug_features, dtype=np.float64)
        m, n = y.shape
        if x.shape[0] != m:
            raise ValueError("patient_features and medication_use disagree")
        if z.shape[0] != n:
            raise ValueError("drug_features and medication_use disagree")
        if ddi_graph.num_nodes != n:
            raise ValueError("DDI graph size must match the number of drugs")
        if ddi_embeddings is not None:
            ddi_embeddings = np.asarray(ddi_embeddings, dtype=np.float64)
            if ddi_embeddings.ndim != 2 or ddi_embeddings.shape[0] != n:
                raise ValueError(
                    f"ddi_embeddings must be ({n}, d), got {ddi_embeddings.shape}"
                )

        self._x_train = x
        self._y_train = y
        self._z_drugs = z
        self._ddi_graph = ddi_graph
        self._ddi_embeddings = ddi_embeddings
        self._reset_caches()

        # ---------------- causal model: treatment + counterfactuals -------
        k = num_clusters or cfg.num_clusters or 10
        k = max(1, min(k, m))
        self._kmeans: KMeansResult = kmeans(x, k, seed=cfg.seed)
        assignment = build_treatment(
            x, y, ddi_graph, k, seed=cfg.seed, clusters=self._kmeans.labels,
            backend=cfg.propagation_backend,
        )
        self._treatment = assignment.matrix

        if cfg.use_counterfactual:
            gamma_p, gamma_d = cfg.gamma_p, cfg.gamma_d
            if gamma_p is None or gamma_d is None:
                auto_p, auto_d = suggest_gammas(x, z, quantile=cfg.gamma_quantile)
                gamma_p = gamma_p if gamma_p is not None else auto_p
                gamma_d = gamma_d if gamma_d is not None else auto_d
            links = build_counterfactual_links(
                x, z, self._treatment, y, gamma_p, gamma_d
            )
            treatment_cf = links.treatment_cf
            outcome_cf = links.outcome_cf
            cf_match_rate = links.match_rate
        else:
            treatment_cf = self._treatment
            outcome_cf = y
            cf_match_rate = 0.0

        # ---------------- model ------------------------------------------
        d1, d2 = x.shape[1], z.shape[1]
        hidden = cfg.hidden_dim
        self._patient_fc = Linear(d1, hidden, rng)       # Eq. 9
        self._drug_fc = Linear(d2, hidden, rng)          # Eq. 10
        self._propagation = LightGCNPropagation(
            cfg.num_layers, default_layer_weights(cfg.num_layers)
        )
        # Decoder input: [h_i ⊙ h'_v, T_iv]  (Eq. 14)
        self._decoder = MLP([hidden + 1, hidden, 1], rng, activation="relu")
        # Adapter for the shared DDI relation embedding (h'_v += W z_v).
        # A trainable projection lets the decoder exploit the DDI structure
        # without the raw embedding magnitudes swamping h'_v.
        self._ddi_adapter = (
            Linear(ddi_embeddings.shape[1], hidden, rng, bias=False)
            if ddi_embeddings is not None
            else None
        )

        graph = BipartiteGraph.from_matrix(y)
        self._p2d, self._d2p = bipartite_propagation(
            graph, backend=cfg.propagation_backend
        )

        params = (
            self._patient_fc.parameters()
            + self._drug_fc.parameters()
            + self._decoder.parameters()
        )
        if self._ddi_adapter is not None:
            params += self._ddi_adapter.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)

        positives = np.argwhere(y == 1)
        if len(positives) == 0:
            raise ValueError("medication_use has no positive links to train on")
        zeros_rows, zeros_cols = np.nonzero(y == 0)

        x_t = Tensor(x)
        z_t = Tensor(z)

        def step(state: TrainState, batch: PairBatch) -> Tensor:
            h_patients, h_drugs_final = self._encode(x_t, z_t)
            batch_i, batch_v = batch.rows, batch.cols

            logits = self._decode(
                h_patients, h_drugs_final, batch_i, batch_v,
                self._treatment[batch_i, batch_v],
            )
            loss_factual = bce_with_logits(logits, batch.labels)

            if cfg.use_counterfactual and cfg.delta > 0:
                cf_labels = outcome_cf[batch_i, batch_v].astype(np.float64)
                cf_logits = self._decode(
                    h_patients, h_drugs_final, batch_i, batch_v,
                    treatment_cf[batch_i, batch_v],
                )
                loss_cf = bce_with_logits(cf_logits, cf_labels)
                loss = loss_factual + loss_cf * cfg.delta  # Eq. 18
                state.log("cf", loss_cf.item())
            else:
                loss = loss_factual
                state.log("cf", 0.0)
            state.log("factual", loss_factual.item())
            return loss

        # 1:1 negative sampling per epoch (Sec. IV-B3), full-batch.
        loader = PairNegativeSampler(positives, zeros_rows, zeros_cols)
        state = TrainState(params, optimizer, rng)
        # All derived state exists from here on, so checkpoint snapshots
        # (and the serving path) may export the model mid-training.
        self._fitted = True
        log = fit_or_resume(
            Trainer(cfg.epochs),
            step,
            state,
            loader,
            callbacks=callbacks,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            extra_writer=checkpoint_extra,
        )

        return MDTrainingLog(
            factual_losses=log.history.get("factual", []),
            counterfactual_losses=log.history.get("cf", []),
            cf_match_rate=cf_match_rate,
            train=log,
        )

    # ------------------------------------------------------------------
    def _encode(self, x_t: Tensor, z_t: Tensor) -> Tuple[Tensor, Tensor]:
        """Run Eq. 9-13 (+ DDI addition); returns (h_patients, h'_drugs)."""
        h_patients = self._patient_fc(x_t).leaky_relu()      # Eq. 9
        h_drugs = self._drug_fc(z_t).leaky_relu()            # Eq. 10
        _smoothed_patients, h_drugs_final = self._propagation(
            h_patients, h_drugs, self._p2d, self._d2p
        )
        if self._ddi_embeddings is not None:
            h_drugs_final = h_drugs_final + self._ddi_adapter(
                Tensor(self._ddi_embeddings)
            )
        return h_patients, h_drugs_final

    def _decode(
        self,
        h_patients: Tensor,
        h_drugs: Tensor,
        patient_idx: np.ndarray,
        drug_idx: np.ndarray,
        treatment: np.ndarray,
        needs_grad: bool = True,
    ) -> Tensor:
        """Eq. 14: MLP([h_i ⊙ h'_v, T_iv]) -> logits.

        The standard decoder shape runs through the fused pair op (one
        graph node, hand-written backward, bitwise-identical arithmetic)
        — this path scores tens of thousands of sampled links per epoch
        and dominates training time; non-standard decoders fall back to
        the generic op-by-op pipeline.  ``needs_grad=False`` (scoring)
        detaches the fused op so its workspace recycles immediately.
        """
        if can_fuse_pair_mlp(self._decoder):
            return pair_interaction_logits(
                h_patients, h_drugs, patient_idx, drug_idx, treatment,
                self._decoder, needs_grad=needs_grad,
            )
        h_i = gather_rows(h_patients, patient_idx)
        h_v = gather_rows(h_drugs, drug_idx)
        interaction = h_i * h_v
        t_col = Tensor(np.asarray(treatment, dtype=np.float64).reshape(-1, 1))
        return self._decoder(concat([interaction, t_col], axis=1)).reshape(-1)

    # ------------------------------------------------------------------
    def treatment_for(self, patient_features: np.ndarray) -> np.ndarray:
        """Derive treatment rows for unobserved patients.

        Mirrors the 3-step definition: (1) no observed links, (2) inherit
        the drugs used in the patient's K-means cluster, (3) propagate
        along DDI synergy edges.
        """
        self._require_fitted()
        x = np.asarray(patient_features, dtype=np.float64)
        clusters = self._kmeans.predict(x)
        cluster_drugs, synergy = self._treatment_factors()
        treatment = cluster_drugs[clusters]
        propagated = sparse_backend.matmul(treatment, synergy) > 0
        return np.maximum(treatment, propagated.astype(np.int64))

    def _treatment_factors(self) -> Tuple[np.ndarray, object]:
        """The two fixed factors of :meth:`treatment_for`, cached after fit.

        Returns the per-cluster drug exposure (K, n) from the observed
        data and the (n, n) synergy adjacency (dense, or CSR when the
        configured propagation backend selects sparse).  Both are pure
        functions of the fitted state, so they are computed once and
        reused by every ``treatment_for`` / ``predict_scores`` call and
        shared with :meth:`scoring_state` so the serving path derives
        treatments from the exact same arrays.
        """
        if self._factor_cache is None:
            n = self._y_train.shape[1]
            k = self._kmeans.centers.shape[0]
            cluster_drugs = np.zeros((k, n), dtype=np.int64)
            np.maximum.at(cluster_drugs, self._kmeans.labels, self._y_train)
            synergy = synergy_adjacency(
                self._ddi_graph, self.config.propagation_backend
            )
            self._factor_cache = (cluster_drugs, synergy)
        return self._factor_cache

    def _fitted_drug_reps(self) -> np.ndarray:
        """Final drug representations h'_v, computed once per fit.

        The encoder output over the *training* graph is fixed after
        training, so re-running Eq. 10-13 (plus the DDI addition) on
        every ``predict_scores`` call is pure waste; the first call pays
        for it and every later call reads the cache.
        """
        if self._drug_reps_cache is None:
            _, h_drugs = self._encode(Tensor(self._x_train), Tensor(self._z_drugs))
            self._drug_reps_cache = h_drugs.numpy()
        return self._drug_reps_cache

    def predict_scores(
        self, patient_features: np.ndarray, chunk_rows: Optional[int] = None
    ) -> np.ndarray:
        """Suggestion scores for every drug, per patient (sigmoid probs).

        Uses the cached post-training drug representations (no re-encode
        of the training set) and scores in chunks of at most
        ``chunk_rows`` (default ``config.score_chunk_rows``) decoder rows
        so the (patients x drugs, hidden) intermediates stay bounded on
        large cohorts.
        """
        self._require_fitted()
        x = np.asarray(patient_features, dtype=np.float64)
        treatment = self.treatment_for(x)
        h_drugs = Tensor(self._fitted_drug_reps())
        h_new = self._patient_fc(Tensor(x)).leaky_relu()
        n_drugs = self._y_train.shape[1]
        num = x.shape[0]
        chunk_rows = chunk_rows or self.config.score_chunk_rows
        patients_per_chunk = max(1, chunk_rows // max(n_drugs, 1))
        scores = np.empty((num, n_drugs), dtype=np.float64)
        drug_range = np.arange(n_drugs)
        for start in range(0, num, patients_per_chunk):
            stop = min(start + patients_per_chunk, num)
            patient_idx = np.repeat(np.arange(start, stop), n_drugs)
            drug_idx = np.tile(drug_range, stop - start)
            logits = self._decode(
                h_new, h_drugs, patient_idx, drug_idx,
                treatment[patient_idx, drug_idx],
                needs_grad=False,
            )
            scores[start:stop] = (
                logits.sigmoid().numpy().reshape(stop - start, n_drugs)
            )
        return scores

    # ------------------------------------------------------------------
    def patient_representations(self, patient_features: np.ndarray) -> np.ndarray:
        """Pre-propagation patient representations (Fig. 7a input)."""
        self._require_fitted()
        return (
            self._patient_fc(Tensor(np.asarray(patient_features, dtype=np.float64)))
            .leaky_relu()
            .numpy()
        )

    def drug_representations(self) -> np.ndarray:
        """Final drug representations h'_v (Fig. 7b input)."""
        self._require_fitted()
        return self._fitted_drug_reps().copy()

    # ------------------------------------------------------------------
    # Persistence hooks (used by repro.serving.artifact)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, np.ndarray]:
        """All fitted state as a flat ``name -> ndarray`` dict (npz-ready).

        Together with the config and the DDI graph this is sufficient to
        rebuild a module whose :meth:`predict_scores` is bitwise identical
        to this one — see :meth:`from_state`.
        """
        self._require_fitted()
        state: Dict[str, np.ndarray] = {
            "x_train": self._x_train,
            "y_train": self._y_train,
            "z_drugs": self._z_drugs,
            "treatment": self._treatment,
            "kmeans.centers": self._kmeans.centers,
            "kmeans.labels": self._kmeans.labels,
            "kmeans.inertia": np.float64(self._kmeans.inertia),
            "kmeans.iterations": np.int64(self._kmeans.iterations),
            "propagation.layer_weights": np.asarray(
                self._propagation.layer_weights, dtype=np.float64
            ),
        }
        for prefix, module in self._weight_modules().items():
            for name, value in module.state_dict().items():
                state[f"{prefix}.{name}"] = value
        if self._ddi_embeddings is not None:
            state["ddi_embeddings"] = self._ddi_embeddings
        return state

    @classmethod
    def from_state(
        cls,
        config: MDGCNConfig,
        state: Dict[str, np.ndarray],
        ddi_graph: SignedGraph,
    ) -> "MDModule":
        """Rebuild a fitted module from :meth:`export_state` output.

        No training happens: layer shapes are inferred from the stored
        weights, the weights are loaded verbatim, and the propagation
        matrices are recomputed (deterministically) from the stored
        medication-use matrix.
        """
        module = cls(config)
        cfg = module.config
        rng = np.random.default_rng(cfg.seed)  # overwritten by the loads below

        module._x_train = np.asarray(state["x_train"], dtype=np.float64)
        module._y_train = np.asarray(state["y_train"], dtype=np.int64)
        module._z_drugs = np.asarray(state["z_drugs"], dtype=np.float64)
        module._treatment = np.asarray(state["treatment"], dtype=np.int64)
        module._ddi_graph = ddi_graph
        ddi_embeddings = state.get("ddi_embeddings")
        module._ddi_embeddings = (
            np.asarray(ddi_embeddings, dtype=np.float64)
            if ddi_embeddings is not None
            else None
        )
        module._kmeans = KMeansResult(
            centers=np.asarray(state["kmeans.centers"], dtype=np.float64),
            labels=np.asarray(state["kmeans.labels"], dtype=np.int64),
            inertia=float(state["kmeans.inertia"]),
            iterations=int(state["kmeans.iterations"]),
        )

        layer_weights = np.asarray(state["propagation.layer_weights"]).tolist()
        module._propagation = LightGCNPropagation(cfg.num_layers, layer_weights)

        def shape(name: str) -> Tuple[int, ...]:
            return np.asarray(state[name]).shape

        hidden = shape("patient_fc.weight")[1]
        module._patient_fc = Linear(shape("patient_fc.weight")[0], hidden, rng)
        module._drug_fc = Linear(shape("drug_fc.weight")[0], hidden, rng)
        decoder_sizes = [shape("decoder.layer0.weight")[0]]
        layer = 0
        while f"decoder.layer{layer}.weight" in state:
            decoder_sizes.append(shape(f"decoder.layer{layer}.weight")[1])
            layer += 1
        module._decoder = MLP(decoder_sizes, rng, activation="relu")
        module._ddi_adapter = (
            Linear(shape("ddi_adapter.weight")[0], hidden, rng, bias=False)
            if "ddi_adapter.weight" in state
            else None
        )
        for prefix, weight_module in module._weight_modules().items():
            weight_module.load_state_dict(
                {
                    name[len(prefix) + 1 :]: value
                    for name, value in state.items()
                    if name.startswith(prefix + ".")
                }
            )

        graph = BipartiteGraph.from_matrix(module._y_train)
        module._p2d, module._d2p = bipartite_propagation(
            graph, backend=cfg.propagation_backend
        )
        module._fitted = True
        return module

    def _weight_modules(self) -> Dict[str, Module]:
        """The trainable submodules, keyed by their persistence prefix."""
        modules = {
            "patient_fc": self._patient_fc,
            "drug_fc": self._drug_fc,
            "decoder": self._decoder,
        }
        if self._ddi_adapter is not None:
            modules["ddi_adapter"] = self._ddi_adapter
        return modules

    def scoring_state(self) -> Dict[str, object]:
        """Frozen arrays for serving-time vectorized scoring.

        Returns everything :class:`repro.serving.BatchScorer` needs to
        reproduce :meth:`predict_scores` without re-encoding the training
        set on every request:

        * ``patient_weight`` / ``patient_bias``: the Eq. 9 FC layer.
        * ``drug_reps``: the final drug representations h'_v (fixed after
          training — Eq. 10-13 plus the DDI addition).
        * ``decoder_weights`` / ``decoder_biases``: the Eq. 14 MLP, applied
          with ReLU between hidden layers and a linear output.
        * ``cluster_drugs``: per-cluster drug exposure (K, n) from the
          observed data, and ``synergy``: the (n, n) synergy adjacency —
          the two fixed factors of :meth:`treatment_for`, served straight
          from the post-fit cache.  ``synergy`` is CSR when the
          configured propagation backend selects sparse, so serving-time
          treatment derivation shares the same fast path.
        """
        self._require_fitted()
        cluster_drugs, synergy = self._treatment_factors()
        return {
            "patient_weight": self._patient_fc.weight.data.copy(),
            "patient_bias": (
                self._patient_fc.bias.data.copy()
                if self._patient_fc.bias is not None
                else np.zeros(self._patient_fc.out_features)
            ),
            "drug_reps": self.drug_representations(),
            "decoder_weights": [
                layer.weight.data.copy() for layer in self._decoder.layers
            ],
            "decoder_biases": [
                (
                    layer.bias.data.copy()
                    if layer.bias is not None
                    else np.zeros(layer.out_features)
                )
                for layer in self._decoder.layers
            ],
            "kmeans": self._kmeans,
            "cluster_drugs": cluster_drugs,
            "synergy": synergy,
        }

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("call fit() first")
