"""The paper's primary contribution: the DSSDDI system and its modules.

* :class:`DDIModule` — DDIGCN drug-relation learning (Sec. IV-A).
* :class:`MDModule` — MDGCN with counterfactual links (Sec. IV-B).
* :class:`MSModule` — subgraph-querying explanations (Sec. IV-C).
* :class:`DSSDDI` — the assembled system (Fig. 4).
"""

from .config import (
    BACKBONES,
    DRUG_EMBEDDING_MODES,
    DDIGCNConfig,
    DSSDDIConfig,
    MDGCNConfig,
    MSConfig,
    ServerConfig,
    ServingConfig,
)
from .ddi_module import DDIModule, DDITrainingLog
from .md_module import MDModule, MDTrainingLog
from .ms_module import Explanation, MSModule, canonical_suggestion
from .rerank import RerankConfig, antagonism_count, rerank_topk
from .system import DSSDDI, FitReport

__all__ = [
    "BACKBONES",
    "DRUG_EMBEDDING_MODES",
    "DDIGCNConfig",
    "MDGCNConfig",
    "MSConfig",
    "ServerConfig",
    "ServingConfig",
    "DSSDDIConfig",
    "DDIModule",
    "DDITrainingLog",
    "MDModule",
    "MDTrainingLog",
    "MSModule",
    "Explanation",
    "canonical_suggestion",
    "DSSDDI",
    "FitReport",
    "RerankConfig",
    "rerank_topk",
    "antagonism_count",
]
