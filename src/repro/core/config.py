"""Configuration for DSSDDI with the paper's hyperparameters as defaults.

Section V-A3: Adam, lr 0.01 (MDGCN) / 0.001 (DDIGCN), 1000 / 400 epochs,
hidden size 64, LeakyReLU after the FC layers, 2 MDGCN propagation layers,
3 DDIGCN layers with batch norm + ReLU, beta_t = 1/(t+2), delta = 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

BACKBONES = ("gin", "sgcn", "sigat", "snea")
DRUG_EMBEDDING_MODES = ("ddigcn", "onehot", "kg", "none")
PROPAGATION_BACKENDS = ("auto", "dense", "sparse")


class _SerializableConfig:
    """JSON round-trip mixin shared by the flat config dataclasses.

    Used by the serving artifact format: every config must survive
    ``from_dict(to_dict())`` exactly so a reloaded system validates and
    scores identically to the one that was saved.
    """

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (field name -> value)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "_SerializableConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
        return cls(**data)


@dataclass
class DDIGCNConfig(_SerializableConfig):
    """DDI-module hyperparameters (Sec. IV-A / V-A3)."""

    backbone: str = "sgcn"
    hidden_dim: int = 64
    num_layers: int = 3
    learning_rate: float = 0.001
    epochs: int = 400
    zero_edge_ratio: float = 1.0  # sampled "no interaction" edges per real edge
    # Adjacency representation: "auto" applies the repro.nn.sparse density
    # policy, "dense"/"sparse" force one path (dense = bitwise seed compat).
    propagation_backend: str = "auto"
    seed: int = 41

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range hyperparameters."""
        if self.backbone not in BACKBONES:
            raise ValueError(f"backbone must be one of {BACKBONES}, got {self.backbone!r}")
        if self.propagation_backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"propagation_backend must be one of {PROPAGATION_BACKENDS}, "
                f"got {self.propagation_backend!r}"
            )
        if self.hidden_dim < 2 or self.hidden_dim % 2 != 0:
            raise ValueError("hidden_dim must be an even integer >= 2")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.zero_edge_ratio < 0:
            raise ValueError("zero_edge_ratio must be >= 0")


@dataclass
class MDGCNConfig(_SerializableConfig):
    """MD-module hyperparameters (Sec. IV-B / V-A3)."""

    hidden_dim: int = 64
    num_layers: int = 2
    learning_rate: float = 0.01
    epochs: int = 1000
    delta: float = 1.0  # counterfactual loss weight (Eq. 18)
    drug_embedding_mode: str = "ddigcn"  # Table II ablation switch
    gamma_quantile: float = 0.25  # drives gamma_p / gamma_d defaults
    gamma_p: Optional[float] = None  # explicit override
    gamma_d: Optional[float] = None
    num_clusters: Optional[int] = None  # default: number of chronic diseases
    use_counterfactual: bool = True
    # Adjacency representation: "auto" applies the repro.nn.sparse density
    # policy, "dense"/"sparse" force one path (dense = bitwise seed compat).
    propagation_backend: str = "auto"
    # Upper bound on (patients x drugs) decoder rows materialized at once
    # by predict_scores; keeps the scoring intermediates bounded on large
    # cohorts.  Small requests fit in one chunk and replay the seed path.
    score_chunk_rows: int = 262144
    seed: int = 43

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range hyperparameters."""
        if self.drug_embedding_mode not in DRUG_EMBEDDING_MODES:
            raise ValueError(
                f"drug_embedding_mode must be one of {DRUG_EMBEDDING_MODES}, "
                f"got {self.drug_embedding_mode!r}"
            )
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if not 0.0 < self.gamma_quantile < 1.0:
            raise ValueError("gamma_quantile must be in (0, 1)")
        if self.propagation_backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"propagation_backend must be one of {PROPAGATION_BACKENDS}, "
                f"got {self.propagation_backend!r}"
            )
        if self.score_chunk_rows < 1:
            raise ValueError("score_chunk_rows must be >= 1")


@dataclass
class MSConfig(_SerializableConfig):
    """MS-module hyperparameters (Sec. IV-C)."""

    alpha: float = 0.5  # SS balance (Eq. 19)
    size_budget: int = 60  # bulk-growth cap in Algorithm 1

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range hyperparameters."""
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.size_budget < 1:
            raise ValueError("size_budget must be >= 1")


@dataclass
class ServingConfig(_SerializableConfig):
    """Serving-time knobs for :class:`repro.serving.SuggestionService`.

    Attributes:
        explanation_cache_size: LRU capacity for MS-module explanations,
            keyed on the sorted suggestion tuple (0 disables caching).
        default_k: suggestion size used when a request omits ``k``.
        rerank: route suggestions through the DDI-aware greedy re-ranker
            (:func:`repro.core.rerank_topk`) instead of plain score top-k.
        synergy_bonus / antagonism_penalty / hard_exclude: the re-ranker
            knobs, mirroring :class:`repro.core.RerankConfig`.
    """

    explanation_cache_size: int = 1024
    default_k: int = 3
    rerank: bool = False
    synergy_bonus: float = 0.05
    antagonism_penalty: float = 0.2
    hard_exclude: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range serving knobs."""
        if self.explanation_cache_size < 0:
            raise ValueError("explanation_cache_size must be >= 0")
        if self.default_k < 1:
            raise ValueError("default_k must be >= 1")
        if self.synergy_bonus < 0 or self.antagonism_penalty < 0:
            raise ValueError("bonus and penalty must be non-negative")


@dataclass
class DSSDDIConfig:
    """Top-level configuration bundling the three modules plus serving.

    Serializes to/from plain JSON via :meth:`to_dict` / :meth:`from_dict`;
    the serving artifact stores this dict verbatim so a loaded system runs
    under the exact configuration it was trained with.
    """

    ddi: DDIGCNConfig = field(default_factory=DDIGCNConfig)
    md: MDGCNConfig = field(default_factory=MDGCNConfig)
    ms: MSConfig = field(default_factory=MSConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)

    def validate(self) -> None:
        """Validate all four sections."""
        self.ddi.validate()
        self.md.validate()
        self.ms.validate()
        self.serving.validate()

    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-JSON representation of all four sections."""
        return {
            "ddi": self.ddi.to_dict(),
            "md": self.md.to_dict(),
            "ms": self.ms.to_dict(),
            "serving": self.serving.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DSSDDIConfig":
        """Rebuild from :meth:`to_dict` output.

        The ``serving`` section is optional so artifacts written before it
        existed keep loading with default serving knobs.
        """
        known = {"ddi", "md", "ms", "serving"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DSSDDIConfig sections: {sorted(unknown)}")
        return cls(
            ddi=DDIGCNConfig.from_dict(data.get("ddi", {})),
            md=MDGCNConfig.from_dict(data.get("md", {})),
            ms=MSConfig.from_dict(data.get("ms", {})),
            serving=ServingConfig.from_dict(data.get("serving", {})),
        )

    @classmethod
    def fast(cls, backbone: str = "sgcn") -> "DSSDDIConfig":
        """Small epoch counts for tests and quick experiments."""
        return cls(
            ddi=DDIGCNConfig(backbone=backbone, epochs=60, hidden_dim=32),
            md=MDGCNConfig(epochs=120, hidden_dim=32),
        )
