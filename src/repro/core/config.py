"""Configuration for DSSDDI with the paper's hyperparameters as defaults.

Section V-A3: Adam, lr 0.01 (MDGCN) / 0.001 (DDIGCN), 1000 / 400 epochs,
hidden size 64, LeakyReLU after the FC layers, 2 MDGCN propagation layers,
3 DDIGCN layers with batch norm + ReLU, beta_t = 1/(t+2), delta = 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

BACKBONES = ("gin", "sgcn", "sigat", "snea")
DRUG_EMBEDDING_MODES = ("ddigcn", "onehot", "kg", "none")


@dataclass
class DDIGCNConfig:
    """DDI-module hyperparameters (Sec. IV-A / V-A3)."""

    backbone: str = "sgcn"
    hidden_dim: int = 64
    num_layers: int = 3
    learning_rate: float = 0.001
    epochs: int = 400
    zero_edge_ratio: float = 1.0  # sampled "no interaction" edges per real edge
    seed: int = 41

    def validate(self) -> None:
        if self.backbone not in BACKBONES:
            raise ValueError(f"backbone must be one of {BACKBONES}, got {self.backbone!r}")
        if self.hidden_dim < 2 or self.hidden_dim % 2 != 0:
            raise ValueError("hidden_dim must be an even integer >= 2")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.zero_edge_ratio < 0:
            raise ValueError("zero_edge_ratio must be >= 0")


@dataclass
class MDGCNConfig:
    """MD-module hyperparameters (Sec. IV-B / V-A3)."""

    hidden_dim: int = 64
    num_layers: int = 2
    learning_rate: float = 0.01
    epochs: int = 1000
    delta: float = 1.0  # counterfactual loss weight (Eq. 18)
    drug_embedding_mode: str = "ddigcn"  # Table II ablation switch
    gamma_quantile: float = 0.25  # drives gamma_p / gamma_d defaults
    gamma_p: Optional[float] = None  # explicit override
    gamma_d: Optional[float] = None
    num_clusters: Optional[int] = None  # default: number of chronic diseases
    use_counterfactual: bool = True
    seed: int = 43

    def validate(self) -> None:
        if self.drug_embedding_mode not in DRUG_EMBEDDING_MODES:
            raise ValueError(
                f"drug_embedding_mode must be one of {DRUG_EMBEDDING_MODES}, "
                f"got {self.drug_embedding_mode!r}"
            )
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if not 0.0 < self.gamma_quantile < 1.0:
            raise ValueError("gamma_quantile must be in (0, 1)")


@dataclass
class MSConfig:
    """MS-module hyperparameters (Sec. IV-C)."""

    alpha: float = 0.5  # SS balance (Eq. 19)
    size_budget: int = 60  # bulk-growth cap in Algorithm 1

    def validate(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.size_budget < 1:
            raise ValueError("size_budget must be >= 1")


@dataclass
class DSSDDIConfig:
    """Top-level configuration bundling the three modules."""

    ddi: DDIGCNConfig = field(default_factory=DDIGCNConfig)
    md: MDGCNConfig = field(default_factory=MDGCNConfig)
    ms: MSConfig = field(default_factory=MSConfig)

    def validate(self) -> None:
        self.ddi.validate()
        self.md.validate()
        self.ms.validate()

    @classmethod
    def fast(cls, backbone: str = "sgcn") -> "DSSDDIConfig":
        """Small epoch counts for tests and quick experiments."""
        return cls(
            ddi=DDIGCNConfig(backbone=backbone, epochs=60, hidden_dim=32),
            md=MDGCNConfig(epochs=120, hidden_dim=32),
        )
