"""Configuration for DSSDDI with the paper's hyperparameters as defaults.

Section V-A3: Adam, lr 0.01 (MDGCN) / 0.001 (DDIGCN), 1000 / 400 epochs,
hidden size 64, LeakyReLU after the FC layers, 2 MDGCN propagation layers,
3 DDIGCN layers with batch norm + ReLU, beta_t = 1/(t+2), delta = 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

BACKBONES = ("gin", "sgcn", "sigat", "snea")
DRUG_EMBEDDING_MODES = ("ddigcn", "onehot", "kg", "none")
PROPAGATION_BACKENDS = ("auto", "dense", "sparse")


class _SerializableConfig:
    """JSON round-trip mixin shared by the flat config dataclasses.

    Used by the serving artifact format: every config must survive
    ``from_dict(to_dict())`` exactly so a reloaded system validates and
    scores identically to the one that was saved.
    """

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (field name -> value)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "_SerializableConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
        return cls(**data)


@dataclass
class DDIGCNConfig(_SerializableConfig):
    """DDI-module hyperparameters (Sec. IV-A / V-A3)."""

    backbone: str = "sgcn"
    hidden_dim: int = 64
    num_layers: int = 3
    learning_rate: float = 0.001
    epochs: int = 400
    zero_edge_ratio: float = 1.0  # sampled "no interaction" edges per real edge
    # Adjacency representation: "auto" applies the repro.nn.sparse density
    # policy, "dense"/"sparse" force one path (dense = bitwise seed compat).
    propagation_backend: str = "auto"
    seed: int = 41

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range hyperparameters."""
        if self.backbone not in BACKBONES:
            raise ValueError(f"backbone must be one of {BACKBONES}, got {self.backbone!r}")
        if self.propagation_backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"propagation_backend must be one of {PROPAGATION_BACKENDS}, "
                f"got {self.propagation_backend!r}"
            )
        if self.hidden_dim < 2 or self.hidden_dim % 2 != 0:
            raise ValueError("hidden_dim must be an even integer >= 2")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.zero_edge_ratio < 0:
            raise ValueError("zero_edge_ratio must be >= 0")


@dataclass
class MDGCNConfig(_SerializableConfig):
    """MD-module hyperparameters (Sec. IV-B / V-A3)."""

    hidden_dim: int = 64
    num_layers: int = 2
    learning_rate: float = 0.01
    epochs: int = 1000
    delta: float = 1.0  # counterfactual loss weight (Eq. 18)
    drug_embedding_mode: str = "ddigcn"  # Table II ablation switch
    gamma_quantile: float = 0.25  # drives gamma_p / gamma_d defaults
    gamma_p: Optional[float] = None  # explicit override
    gamma_d: Optional[float] = None
    num_clusters: Optional[int] = None  # default: number of chronic diseases
    use_counterfactual: bool = True
    # Adjacency representation: "auto" applies the repro.nn.sparse density
    # policy, "dense"/"sparse" force one path (dense = bitwise seed compat).
    propagation_backend: str = "auto"
    # Upper bound on (patients x drugs) decoder rows materialized at once
    # by predict_scores; keeps the scoring intermediates bounded on large
    # cohorts.  Small requests fit in one chunk and replay the seed path.
    score_chunk_rows: int = 262144
    seed: int = 43

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range hyperparameters."""
        if self.drug_embedding_mode not in DRUG_EMBEDDING_MODES:
            raise ValueError(
                f"drug_embedding_mode must be one of {DRUG_EMBEDDING_MODES}, "
                f"got {self.drug_embedding_mode!r}"
            )
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if not 0.0 < self.gamma_quantile < 1.0:
            raise ValueError("gamma_quantile must be in (0, 1)")
        if self.propagation_backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"propagation_backend must be one of {PROPAGATION_BACKENDS}, "
                f"got {self.propagation_backend!r}"
            )
        if self.score_chunk_rows < 1:
            raise ValueError("score_chunk_rows must be >= 1")


@dataclass
class MSConfig(_SerializableConfig):
    """MS-module hyperparameters (Sec. IV-C)."""

    alpha: float = 0.5  # SS balance (Eq. 19)
    size_budget: int = 60  # bulk-growth cap in Algorithm 1

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range hyperparameters."""
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.size_budget < 1:
            raise ValueError("size_budget must be >= 1")


@dataclass
class ServingConfig(_SerializableConfig):
    """Serving-time knobs for :class:`repro.serving.SuggestionService`.

    Attributes:
        explanation_cache_size: LRU capacity for MS-module explanations,
            keyed on the sorted suggestion tuple (0 disables caching).
        default_k: suggestion size used when a request omits ``k``.
        rerank: route suggestions through the DDI-aware greedy re-ranker
            (:func:`repro.core.rerank_topk`) instead of plain score top-k.
        synergy_bonus / antagonism_penalty / hard_exclude: the re-ranker
            knobs, mirroring :class:`repro.core.RerankConfig`.
    """

    explanation_cache_size: int = 1024
    default_k: int = 3
    rerank: bool = False
    synergy_bonus: float = 0.05
    antagonism_penalty: float = 0.2
    hard_exclude: bool = False
    # Fixed-shape scoring block: 0 keeps the legacy whole-batch path; a
    # value >= 2 scores every request in fixed chunks of that many
    # patients (the tail padded), which makes scores bitwise-independent
    # of how concurrent requests were coalesced into batches.  See
    # BatchScorer.scores_blocked; the online gateway relies on this for
    # its micro-batching determinism guarantee.
    score_block: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range serving knobs."""
        if self.explanation_cache_size < 0:
            raise ValueError("explanation_cache_size must be >= 0")
        if self.default_k < 1:
            raise ValueError("default_k must be >= 1")
        if self.synergy_bonus < 0 or self.antagonism_penalty < 0:
            raise ValueError("bonus and penalty must be non-negative")
        if self.score_block != 0 and self.score_block < 2:
            raise ValueError("score_block must be 0 (off) or >= 2")


@dataclass
class ServerConfig(_SerializableConfig):
    """Deployment knobs for the online gateway (:mod:`repro.server`).

    Unlike :class:`ServingConfig` (which travels inside the model
    artifact — it describes *how to score*), this config describes one
    *deployment*: where to listen, how aggressively to micro-batch, which
    artifact version to pin, and how much telemetry to keep.  It is
    therefore not part of :class:`DSSDDIConfig` and never enters the
    artifact manifest; ``repro-serve`` builds it from command-line flags.

    Attributes:
        host / port: HTTP listen address of the gateway.
        max_batch_size: micro-batcher flush trigger — a flush happens as
            soon as this many patient rows are queued (1 disables
            coalescing: every request is scored on its own).
        max_wait_ms: micro-batcher time trigger — the oldest queued
            request never waits longer than this before a flush.
        score_block: fixed-shape scoring block forwarded to
            :class:`repro.serving.SuggestionService` (0 = legacy path;
            >= 2 = bitwise batch-composition-independent scoring).
        max_request_rows: per-request cap on patient rows (request
            validation; protects the batcher from one giant request).
        submit_timeout_s: how long a request waits for its batch result
            before the gateway answers 503.
        pinned_version: serve exactly this registry version instead of
            the latest one (hot-swap via reload still honors the pin).
        watch_interval_s: poll the artifact root for new versions this
            often and hot-swap automatically (0 disables the watcher;
            POST /-/reload always works).
        latency_reservoir: reservoir size of the latency estimator
            behind the ``/metrics`` percentiles.
        workers: pre-fork worker process count (:mod:`repro.server.pool`).
            Each worker serves the shared listening socket with its own
            batcher/registry; 1 keeps the single-process gateway.
        mmap_artifacts: ``None`` = auto (memory-map artifacts exactly
            when running as a pool worker); ``True``/``False`` force it.
        drain_timeout_s: on SIGTERM, how long a worker waits for
            in-flight requests to finish before exiting anyway.
        stats_interval_s: how often each pool worker publishes its
            counter snapshot to the shared stats board (``/metrics``
            aggregation across workers).
        deadline_ms: per-request time budget covering queue wait plus
            scoring.  A request whose budget runs out is answered 503
            with a ``Retry-After`` hint instead of holding a connection
            open for work whose caller has given up (0 disables; a
            request body may lower — never raise — its own budget).
        queue_limit: admission control — when this many patient rows
            are already queued in the micro-batcher, new requests are
            shed with 503 instead of growing the queue without bound
            (0 = unbounded, the pre-deadline behavior).
        breaker_threshold: consecutive scoring failures that trip the
            circuit breaker into degraded mode (0 disables the
            breaker).
        breaker_cooldown_s: seconds the tripped breaker rejects
            requests before letting one probe through.
        trace_sample: fraction of requests traced by :mod:`repro.obs`
            (0.0 disables unsolicited tracing — requests carrying an
            ``X-Repro-Trace`` header are always traced; 1.0 traces
            everything).
        trace_ring: finished spans kept in the in-memory ring served by
            ``GET /v1/trace`` (per process).
        trace_log: optional JSONL file every finished span is appended
            to (size-rotated; see :class:`repro.obs.JsonlSink`).
    """

    host: str = "127.0.0.1"
    port: int = 8035
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    score_block: int = 8
    max_request_rows: int = 256
    submit_timeout_s: float = 30.0
    pinned_version: Optional[str] = None
    watch_interval_s: float = 0.0
    latency_reservoir: int = 4096
    workers: int = 1
    mmap_artifacts: Optional[bool] = None
    drain_timeout_s: float = 10.0
    stats_interval_s: float = 1.0
    deadline_ms: float = 0.0
    queue_limit: int = 0
    breaker_threshold: int = 0
    breaker_cooldown_s: float = 2.0
    trace_sample: float = 0.0
    trace_ring: int = 512
    trace_log: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range gateway knobs."""
        if not 0 <= self.port < 65536:
            raise ValueError("port must be in [0, 65536) (0 = ephemeral)")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.score_block != 0 and self.score_block < 2:
            raise ValueError("score_block must be 0 (off) or >= 2")
        if self.max_request_rows < 1:
            raise ValueError("max_request_rows must be >= 1")
        if self.submit_timeout_s <= 0:
            raise ValueError("submit_timeout_s must be > 0")
        if self.watch_interval_s < 0:
            raise ValueError("watch_interval_s must be >= 0")
        if self.latency_reservoir < 1:
            raise ValueError("latency_reservoir must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be > 0")
        if self.stats_interval_s <= 0:
            raise ValueError("stats_interval_s must be > 0")
        if self.deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0 (0 = no deadline)")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0 (0 = unbounded)")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0 (0 = off)")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be > 0")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if self.trace_ring < 1:
            raise ValueError("trace_ring must be >= 1")


@dataclass
class DSSDDIConfig:
    """Top-level configuration bundling the three modules plus serving.

    Serializes to/from plain JSON via :meth:`to_dict` / :meth:`from_dict`;
    the serving artifact stores this dict verbatim so a loaded system runs
    under the exact configuration it was trained with.
    """

    ddi: DDIGCNConfig = field(default_factory=DDIGCNConfig)
    md: MDGCNConfig = field(default_factory=MDGCNConfig)
    ms: MSConfig = field(default_factory=MSConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)

    def validate(self) -> None:
        """Validate all four sections."""
        self.ddi.validate()
        self.md.validate()
        self.ms.validate()
        self.serving.validate()

    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-JSON representation of all four sections."""
        return {
            "ddi": self.ddi.to_dict(),
            "md": self.md.to_dict(),
            "ms": self.ms.to_dict(),
            "serving": self.serving.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DSSDDIConfig":
        """Rebuild from :meth:`to_dict` output.

        The ``serving`` section is optional so artifacts written before it
        existed keep loading with default serving knobs.
        """
        known = {"ddi", "md", "ms", "serving"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DSSDDIConfig sections: {sorted(unknown)}")
        return cls(
            ddi=DDIGCNConfig.from_dict(data.get("ddi", {})),
            md=MDGCNConfig.from_dict(data.get("md", {})),
            ms=MSConfig.from_dict(data.get("ms", {})),
            serving=ServingConfig.from_dict(data.get("serving", {})),
        )

    @classmethod
    def fast(cls, backbone: str = "sgcn") -> "DSSDDIConfig":
        """Small epoch counts for tests and quick experiments."""
        return cls(
            ddi=DDIGCNConfig(backbone=backbone, epochs=60, hidden_dim=32),
            md=MDGCNConfig(epochs=120, hidden_dim=32),
        )
