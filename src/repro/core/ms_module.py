"""The Medical Support module (Sec. IV-C).

Given the suggested drugs, extract the closest dense subgraph of the DDI
graph (Algorithm 1: truss decomposition + Steiner tree + bulk/shrink) and
produce a doctor-facing explanation: the synergistic and antagonistic
interactions among the suggested drugs and between suggested and
non-suggested community drugs, plus the Suggestion Satisfaction score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph import CTCResult, SignedGraph, closest_truss_community
from ..metrics import SatisfactionBreakdown, suggestion_satisfaction
from .config import MSConfig


def canonical_suggestion(suggested: Sequence[int]) -> Tuple[int, ...]:
    """Normalize a suggestion to a sorted, duplicate-free id tuple.

    Explanations depend only on the *set* of suggested drugs, never on
    their ranking order or on the patient, so this tuple is the cache key
    used by :class:`repro.serving.SuggestionService` — two patients with
    the same suggested set share one cached explanation.
    """
    key = tuple(sorted(set(int(s) for s in suggested)))
    if not key:
        raise ValueError("need at least one suggested drug")
    return key


@dataclass
class Explanation:
    """Doctor-facing explanation of a medication suggestion (Definition 4).

    Produced by :meth:`MSModule.explain` (Algorithm 1: truss decomposition
    + Steiner tree + bulk/shrink around the suggested drugs); consumed
    either programmatically (the attribute lists) or as the rendered
    Fig. 8-style text from :meth:`render`.  An explanation is a pure
    function of the suggested drug *set*, which is what makes it cacheable
    across patients.

    Attributes:
        suggested: the k suggested drug ids (sorted, duplicate-free).
        community: all drugs in the closest dense subgraph.
        synergy_within: synergistic pairs among the suggested drugs.
        antagonism_within: antagonistic pairs among the suggested drugs
            (ideally empty — flagged to the doctor when not).
        antagonism_avoided: antagonistic pairs between a suggested and a
            non-suggested community drug (drugs the system steered around).
        satisfaction: the SS breakdown (Eq. 19).
        drug_names: optional id -> name mapping for rendering.

    Example::

        explanation = system.explain([46, 47])
        print(explanation.render())
        # Suggestion: Simvastatin, Atorvastatin
        # Suggestion Satisfaction: 0.83..
        # Synergism: ...
    """

    suggested: List[int]
    community: List[int]
    synergy_within: List[Tuple[int, int]]
    antagonism_within: List[Tuple[int, int]]
    antagonism_avoided: List[Tuple[int, int]]
    satisfaction: SatisfactionBreakdown
    drug_names: Dict[int, str] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable summary (the paper's Fig. 8-style output)."""

        def name(did: int) -> str:
            return self.drug_names.get(did, f"drug {did}")

        lines = [
            "Suggestion: " + ", ".join(name(d) for d in self.suggested),
            f"Suggestion Satisfaction: {self.satisfaction.value:.4f}",
        ]
        if self.synergy_within:
            lines.append("Synergism:")
            lines.extend(
                f"  {name(u)} and {name(v)}" for u, v in self.synergy_within
            )
        if self.antagonism_within:
            lines.append("WARNING - antagonism inside the suggestion:")
            lines.extend(
                f"  {name(u)} and {name(v)}" for u, v in self.antagonism_within
            )
        if self.antagonism_avoided:
            lines.append("Antagonism (avoided non-suggested drugs):")
            lines.extend(
                f"  {name(u)} and {name(v)}" for u, v in self.antagonism_avoided
            )
        return "\n".join(lines)


class MSModule:
    """Explanation generator over a signed DDI graph.

    ``drug_names`` given at construction become the default rendering
    names, making :meth:`explain` a pure function of the suggested drug
    set — the property the serving layer's explanation cache relies on.
    """

    def __init__(
        self,
        ddi: SignedGraph,
        config: Optional[MSConfig] = None,
        drug_names: Optional[Dict[int, str]] = None,
    ) -> None:
        self.config = config or MSConfig()
        self.config.validate()
        self.ddi = ddi
        self.drug_names = dict(drug_names) if drug_names else {}
        self._unsigned = ddi.to_unsigned()

    def query_subgraph(self, suggested: Sequence[int]) -> Optional[CTCResult]:
        """Algorithm 1: closest truss community around the suggested drugs."""
        return closest_truss_community(
            self._unsigned, list(suggested), size_budget=self.config.size_budget
        )

    def explain(
        self,
        suggested: Sequence[int],
        drug_names: Optional[Dict[int, str]] = None,
    ) -> Explanation:
        """Produce the full explanation for a suggestion.

        ``drug_names`` overrides the module-level default mapping for this
        call only.
        """
        suggested = list(canonical_suggestion(suggested))
        community = self.query_subgraph(suggested)
        if community is None:
            members = set(suggested)
            for s in suggested:
                members.update(self.ddi.neighbors(s))
            member_list = sorted(members)
        else:
            member_list = sorted(set(community.nodes) | set(suggested))

        suggested_set = set(suggested)
        synergy_within: List[Tuple[int, int]] = []
        antagonism_within: List[Tuple[int, int]] = []
        antagonism_avoided: List[Tuple[int, int]] = []
        for idx, u in enumerate(member_list):
            for v in member_list[idx + 1 :]:
                sign = self.ddi.sign_or_none(u, v)
                if sign is None or sign == 0:
                    continue
                u_in, v_in = u in suggested_set, v in suggested_set
                if u_in and v_in:
                    (synergy_within if sign == 1 else antagonism_within).append((u, v))
                elif u_in != v_in and sign == -1:
                    antagonism_avoided.append((u, v))

        satisfaction = suggestion_satisfaction(
            self.ddi, suggested, alpha=self.config.alpha, subgraph_nodes=member_list
        )
        return Explanation(
            suggested=suggested,
            community=member_list,
            synergy_within=synergy_within,
            antagonism_within=antagonism_within,
            antagonism_avoided=antagonism_avoided,
            satisfaction=satisfaction,
            drug_names=drug_names if drug_names is not None else self.drug_names,
        )
