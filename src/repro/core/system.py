"""DSSDDI: the full decision support system (Fig. 4).

Wires the three modules together behind a scikit-learn-style API:

    system = DSSDDI(config)
    system.fit(x_train, y_train, ddi_dataset)
    suggestions = system.suggest(x_new, k=3)      # ranked drug ids
    explanation = system.explain(suggestions[0])  # MS-module output
    scores = system.predict_scores(x_test)        # raw score matrix
    system.save("model_dir")                      # fit once ...
    system = DSSDDI.load("model_dir")             # ... serve many

Drug original features follow the Table II ablation switch in the MD
config: DRKG TransE embeddings ("kg", the paper's default input), one-hot
("onehot"), or the DDIGCN relation embeddings themselves ("ddigcn").

For request-oriented serving (batched scoring, explanation caching) wrap
a fitted or loaded system in :class:`repro.serving.SuggestionService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.catalog import drug_names
from ..data.ddi import DDIDataset
from ..data.drkg import pretrained_drug_embeddings
from .config import DSSDDIConfig
from .ddi_module import DDIModule, DDITrainingLog
from .md_module import MDModule, MDTrainingLog
from .ms_module import Explanation, MSModule


@dataclass
class FitReport:
    """Training logs of both learned modules."""

    ddi_log: Optional[DDITrainingLog]
    md_log: MDTrainingLog

    def training_summary(self) -> Dict[str, Dict[str, object]]:
        """Manifest-ready per-module convergence summary.

        One entry per trained module (``"md"``, plus ``"ddi"`` when the
        DDIGCN ran) with the engine-level facts — epochs run, final
        loss, wall seconds, early-stop epoch, checkpoints written, and
        the checkpoint epoch a resumed run continued from.
        """
        summary = {"md": self.md_log.train.to_dict()}
        if self.ddi_log is not None:
            summary["ddi"] = self.ddi_log.train.to_dict()
        return summary


class DSSDDI:
    """The decision support system of the paper (Definition 1).

    Train once, then either score in-process or persist the fitted state
    and serve it through :class:`repro.serving.SuggestionService`::

        system = DSSDDI(DSSDDIConfig.fast())
        system.fit(x_train, y_train, ddi_dataset)

        suggestions = system.suggest(x_new, k=3)       # ranked drug ids
        explanation = system.explain(suggestions[0])   # MS-module output
        scores = system.predict_scores(x_test)         # raw score matrix

        system.save("model_dir")                       # .npz + JSON artifact
        reloaded = DSSDDI.load("model_dir")            # scores bitwise-equal

    A loaded system restores the full serving surface (``predict_scores``,
    ``suggest``, ``explain``, ``suggest_and_explain``, the representation
    accessors) but not the DDIGCN training state: ``ddi_module`` is None
    until :meth:`fit` is called again.
    """

    def __init__(
        self,
        config: Optional[DSSDDIConfig] = None,
        drug_feature_matrix: Optional[np.ndarray] = None,
    ) -> None:
        """``drug_feature_matrix`` overrides the drug original features
        (otherwise chosen by ``config.md.drug_embedding_mode``)."""
        self.config = config or DSSDDIConfig()
        self.config.validate()
        self._drug_feature_override = drug_feature_matrix
        self.ddi_module: Optional[DDIModule] = None
        self.md_module: Optional[MDModule] = None
        self.ms_module: Optional[MSModule] = None
        self._ddi_data: Optional[DDIDataset] = None
        self._drug_names: Dict[int, str] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self,
        patient_features: np.ndarray,
        medication_use: np.ndarray,
        ddi: DDIDataset,
        num_clusters: Optional[int] = None,
        kg_dim: int = 64,
        kg_epochs: int = 10,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
    ) -> FitReport:
        """Train the DDI and MD modules and prepare the MS module.

        Args:
            patient_features: (m, d1) observed (training) patient features.
            medication_use: (m, n) observed medication matrix.
            ddi: the DDI dataset (graph + catalog).
            num_clusters: treatment clustering K (default: number of
                chronic disease classes in the catalog).
            kg_dim / kg_epochs: TransE settings when the drug-embedding
                mode is "kg" (the paper uses dim 400; smaller is faster and
                does not change the qualitative Table II ordering).
            checkpoint_dir: when set, each module checkpoints its
                :class:`repro.train.TrainState` under ``<dir>/ddi`` and
                ``<dir>/md`` every ``checkpoint_every`` epochs (every
                epoch when left at 0), and a
                re-run resumes from the newest checkpoint instead of
                restarting (bitwise-identical result, see
                ``tests/train/test_resume.py``).  MD checkpoints embed a
                servable artifact snapshot, so
                :func:`repro.server.publish_artifact` can publish the
                best-so-far model straight from a checkpoint.
        """
        cfg = self.config
        n_drugs = ddi.graph.num_nodes
        self._ddi_data = ddi
        self._drug_names = drug_names(ddi.catalog)
        checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None

        # Table II ablation: the mode selects which embedding is *added* to
        # the final drug representation — DDIGCN output, one-hot, KG
        # (TransE) or nothing — with the rest of the system held fixed.
        mode = cfg.md.drug_embedding_mode
        ddi_log: Optional[DDITrainingLog] = None
        ddi_embeddings: Optional[np.ndarray] = None
        self.ddi_module = DDIModule(cfg.ddi)
        if mode == "ddigcn":
            ddi_log = self.ddi_module.fit(
                ddi.graph,
                checkpoint_dir=(
                    checkpoint_dir / "ddi" if checkpoint_dir else None
                ),
                checkpoint_every=checkpoint_every,
            )
            ddi_embeddings = self.ddi_module.drug_embeddings()
        elif mode == "onehot":
            ddi_embeddings = np.eye(n_drugs)
        elif mode == "kg":
            kg = pretrained_drug_embeddings(dim=kg_dim, epochs=kg_epochs, seed=cfg.ddi.seed)
            ddi_embeddings = kg[:n_drugs]
        elif mode == "none":
            ddi_embeddings = None

        if self._drug_feature_override is not None:
            drug_features = np.asarray(self._drug_feature_override, dtype=np.float64)
        else:
            # Original drug features z_v (Eq. 10) are held fixed across the
            # Table II variants — the ablation varies only the embedding
            # *added* to h'_v.  The paper uses DRKG pre-trained features
            # here; we substitute one-hot ids (DESIGN.md section 2).
            drug_features = np.eye(n_drugs)

        if num_clusters is None:
            diseases = {d.disease for d in ddi.catalog}
            num_clusters = len(diseases)

        self.md_module = MDModule(cfg.md)
        md_log = self.md_module.fit(
            patient_features,
            medication_use,
            drug_features,
            ddi.graph,
            ddi_embeddings,
            num_clusters=num_clusters,
            checkpoint_dir=(checkpoint_dir / "md" if checkpoint_dir else None),
            checkpoint_every=checkpoint_every,
            # Each MD checkpoint also embeds a servable snapshot of the
            # whole system, publishable via repro.server.publish_artifact.
            checkpoint_extra=(
                self._write_servable_snapshot if checkpoint_dir else None
            ),
        )
        self.ms_module = MSModule(ddi.graph, cfg.ms, drug_names=self._drug_names)
        self._fitted = True
        return FitReport(ddi_log=ddi_log, md_log=md_log)

    def _write_servable_snapshot(self, directory) -> None:
        """Embed a loadable artifact of the current weights (checkpoints).

        Called inside the atomic checkpoint write with the in-flight
        checkpoint directory; the snapshot lands in ``<ckpt>/artifact``
        and is what lets the model registry serve the best-so-far model
        of a still-running (or killed) fit.
        """
        from ..serving.artifact import save_artifact

        save_artifact(self, Path(directory) / "artifact")

    # ------------------------------------------------------------------
    # Persistence (fit once, serve many — see repro.serving)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize all fitted state to an ``.npz`` + JSON artifact.

        ``path`` becomes a directory holding ``manifest.json`` (config,
        catalog, format version) and ``arrays.npz`` (model weights, fitted
        K-means, treatment machinery, DDI graph edges).  Reload with
        :meth:`DSSDDI.load` or serve directly with
        ``repro.serving.SuggestionService.load(path)``.
        """
        self._require_fitted()
        from ..serving.artifact import save_artifact

        save_artifact(self, path)

    @classmethod
    def load(cls, path, mmap_mode=None, verify=True) -> "DSSDDI":
        """Rebuild a fitted system from a :meth:`save` artifact.

        The restored system's :meth:`predict_scores` is bitwise identical
        to the saved one's; no retraining or RNG is involved.
        ``mmap_mode="r"`` memory-maps the stored arrays instead of
        copying them — processes loading the same artifact then share
        one physical copy of the weights through the page cache (this is
        how ``repro-serve --workers N`` keeps N workers at ~1x RSS).
        ``verify`` (default on) checks the stored arrays against the
        manifest's SHA-256 digests and raises
        :class:`repro.serving.artifact.ArtifactIntegrityError` if the
        artifact was corrupted after saving.
        """
        from ..serving.artifact import load_system

        return load_system(path, mmap_mode=mmap_mode, verify=verify)

    @classmethod
    def _from_artifact(
        cls,
        config: DSSDDIConfig,
        md_module: MDModule,
        ddi_data: DDIDataset,
    ) -> "DSSDDI":
        """Assemble a fitted system from deserialized parts (no training)."""
        system = cls(config)
        system.md_module = md_module
        system._ddi_data = ddi_data
        system._drug_names = drug_names(ddi_data.catalog)
        system.ms_module = MSModule(
            ddi_data.graph, config.ms, drug_names=system._drug_names
        )
        system._fitted = True
        return system

    @property
    def ddi_data(self) -> Optional[DDIDataset]:
        """The DDI dataset the system was fitted on (graph + catalog)."""
        return self._ddi_data

    # ------------------------------------------------------------------
    def predict_scores(self, patient_features: np.ndarray) -> np.ndarray:
        """Suggestion scores (n_patients, n_drugs)."""
        self._require_fitted()
        return self.md_module.predict_scores(patient_features)

    def suggest(self, patient_features: np.ndarray, k: int) -> List[List[int]]:
        """Top-k drug suggestions per patient (Definition 3)."""
        from ..metrics import top_k_indices

        scores = self.predict_scores(np.atleast_2d(patient_features))
        return [row.tolist() for row in top_k_indices(scores, k)]

    def explain(self, suggested: Sequence[int]) -> Explanation:
        """MS-module explanation for one suggestion (Definition 4)."""
        self._require_fitted()
        return self.ms_module.explain(suggested, drug_names=self._drug_names)

    def suggest_and_explain(
        self, patient_features: np.ndarray, k: int
    ) -> List[Explanation]:
        """System output (Fig. 4): suggestions with their explanations."""
        return [self.explain(s) for s in self.suggest(patient_features, k)]

    # ------------------------------------------------------------------
    def patient_representations(self, patient_features: np.ndarray) -> np.ndarray:
        """Pre-propagation patient representations h_u (what the decoder sees)."""
        self._require_fitted()
        return self.md_module.patient_representations(patient_features)

    def drug_representations(self) -> np.ndarray:
        """Final drug representations h'_v (propagated + DDI embedding)."""
        self._require_fitted()
        return self.md_module.drug_representations()

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("call fit() first")
