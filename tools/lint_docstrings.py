"""Docstring-coverage lint for the repro package (run by CI).

Rules:

* every module under ``src/repro`` must have a module docstring;
* every public class (any module) must have a class docstring;
* every public module-level function and public method in the documented
  public surface — ``repro.core``, ``repro.serving``, ``repro.pipeline``
  and ``repro.nn.sparse`` (the packages ``docs/api.md`` covers) — must
  have a docstring.

"Public" means the name does not start with ``_``.  Nested (closure)
functions are never checked.  Exits non-zero listing every violation.

Usage::

    python tools/lint_docstrings.py [src-root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages/modules whose public functions and methods must be documented.
FUNCTION_SURFACE = (
    "repro/core",
    "repro/serving",
    "repro/server",
    "repro/pipeline",
    "repro/nn/sparse.py",
)


def _in_function_surface(path: Path, root: Path) -> bool:
    rel = path.relative_to(root).as_posix()
    return any(
        rel == surface or rel.startswith(surface.rstrip("/") + "/")
        for surface in FUNCTION_SURFACE
    )


def _check_defs(nodes, *, where: str, check_functions: bool, problems: list) -> None:
    """Check one body level (module or class) — never recurses into functions."""
    for node in nodes:
        if isinstance(node, ast.ClassDef):
            if not node.name.startswith("_") and not ast.get_docstring(node):
                problems.append(f"{where}:{node.lineno}: class {node.name} lacks a docstring")
            _check_defs(
                node.body, where=where, check_functions=check_functions, problems=problems
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if (
                check_functions
                and not node.name.startswith("_")
                and not ast.get_docstring(node)
            ):
                problems.append(
                    f"{where}:{node.lineno}: def {node.name} lacks a docstring"
                )


def lint(root: Path) -> list:
    """Return the list of violations under ``root`` (a src directory)."""
    problems: list = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        where = str(path)
        if not ast.get_docstring(tree):
            problems.append(f"{where}:1: module lacks a docstring")
        _check_defs(
            tree.body,
            where=where,
            check_functions=_in_function_surface(path, root),
            problems=problems,
        )
    return problems


def main(argv=None) -> int:
    """CLI entry; prints violations and returns the exit code."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "src"
    problems = lint(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} docstring violation(s)")
        return 1
    print("docstring coverage OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
