"""Static lint: durable state must go through the atomic-write helpers.

PR 7 made every write to crash-sensitive state (stage cache entries,
training checkpoints, model artifacts, registry versions, run manifests,
stats snapshots) go through :mod:`repro.atomicio` — temp file, fsync,
one ``os.replace``.  This lint keeps it that way: it walks the modules
that own such state and flags *direct* write calls that bypass the
helpers:

* ``open(..., "w")`` / ``open(..., "wb")`` (and ``Path.write_text`` /
  ``Path.write_bytes``) at module/class/function level;
* ``np.savez`` / ``np.save`` / ``json.dump`` straight to a final path.

A direct write is fine when it targets a *temp* location that is later
promoted atomically (the checkpoint writer stages ``arrays.npz`` inside
a ``.ckpt-*`` temp dir, for example), so lines carrying the marker
comment ``# lint: staged-write`` are exempt — the comment forces the
author to say out loud that the path is pre-rename.  The marker also
covers the line directly below it, so one marker on a ``with open(...)``
header exempts the ``json.dump`` in its body.  Reads are never flagged.

Usage::

    python tools/lint_atomic_writes.py [src-root]

Exits non-zero listing every violation (CI runs this next to the
docstring lint).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules owning crash-sensitive state: any direct write here must
#: either go through repro.atomicio or carry the staged-write marker.
GUARDED_MODULES = (
    "repro/pipeline/cache.py",
    "repro/pipeline/manifest.py",
    "repro/pipeline/runner.py",
    "repro/train/state.py",
    "repro/train/callbacks.py",
    "repro/serving/artifact.py",
    "repro/server/registry.py",
    "repro/server/stats.py",
)

#: Marker comment that declares a write as staged-then-promoted.
STAGED_MARKER = "# lint: staged-write"

WRITE_MODES = {"w", "wb", "w+", "wb+", "a", "ab", "a+", "ab+", "x", "xb"}


def _call_name(node: ast.Call) -> str:
    """Dotted name of the called function ('' when not a plain name)."""
    func = node.func
    parts = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


def _open_write_mode(node: ast.Call) -> bool:
    """Whether this is ``open(..., "<write mode>")``."""
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in WRITE_MODES for flag in (mode.value.replace("t", ""),))
    return False


def _flagged_calls(tree: ast.AST):
    """Yield (lineno, description) for every direct-write call."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        tail = name.rsplit(".", 1)[-1]
        if name == "open" and _open_write_mode(node):
            yield node.lineno, "open(..., 'w')"
        elif tail in ("write_text", "write_bytes"):
            yield node.lineno, f"Path.{tail}(...)"
        elif name in ("np.savez", "np.savez_compressed", "np.save", "numpy.savez"):
            yield node.lineno, f"{name}(...)"
        elif tail == "dump" and name.split(".", 1)[0] in ("json", "pickle"):
            yield node.lineno, f"{name}(...)"


def lint_file(path: Path, rel: str) -> list:
    """Every unmarked direct write in one guarded module."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    problems = []
    for lineno, what in _flagged_calls(ast.parse(source, filename=str(path))):
        # The marker exempts its own line and the line below, so one
        # marker on a ``with open(...)`` header covers the dump inside.
        window = lines[max(0, lineno - 2) : lineno]
        if any(STAGED_MARKER in line for line in window):
            continue
        problems.append(
            f"{rel}:{lineno}: direct {what} in a crash-sensitive module — "
            f"use repro.atomicio (or mark the line '{STAGED_MARKER}' if it "
            f"targets a temp path promoted by an atomic rename)"
        )
    return problems


def main(argv) -> int:
    """Lint every guarded module under the source root; 0 = clean."""
    root = Path(argv[1]) if len(argv) > 1 else Path("src")
    problems = []
    for rel in GUARDED_MODULES:
        path = root / rel
        if not path.is_file():
            problems.append(f"{rel}: guarded module missing under {root}")
            continue
        problems.extend(lint_file(path, rel))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} atomic-write violation(s)")
        return 1
    count = len(GUARDED_MODULES)
    print(f"atomic-write lint: {count} crash-sensitive modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
