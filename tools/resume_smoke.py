"""CI resume smoke: kill a checkpointed fit mid-run, resume, compare.

Drives the real CLI end to end:

1. start ``repro run chronic.fit.dssddi_sgcn --scale tiny
   --checkpoint-every 1`` as a subprocess;
2. poll for the first MD-module checkpoint and ``SIGKILL`` the process
   (a genuine hard kill — no cleanup handlers run);
3. re-run the same command and assert the run manifest records
   ``resumed_from`` plus checkpoint metadata;
4. run the stage uninterrupted in a *fresh* cache and assert both cached
   artifacts carry the same content digest — i.e. the resumed fit is
   bitwise-identical to one that was never interrupted.

The kill in step 2 races the (fast) tiny-scale fit; if the fit finishes
before the signal lands, the attempt is discarded and retried with a
fresh cache so the smoke never asserts on a stale premise.

Usage::

    PYTHONPATH=src python tools/resume_smoke.py [workdir]
"""

from __future__ import annotations

import glob
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

STAGE = "chronic.fit.dssddi_sgcn"
ATTEMPTS = 5


def _repro(*args: str, cache_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.pipeline", "run", STAGE,
            "--scale", "tiny", "--checkpoint-every", "1",
            "--cache-dir", str(cache_dir), *args,
        ],
        env=env,
    )


def _stage_digest(cache_dir: Path) -> str:
    from repro.pipeline.cache import StageCache

    entries = [e for e in StageCache(cache_dir).entries() if e.stage == STAGE]
    if len(entries) != 1:
        raise AssertionError(
            f"expected exactly one cached {STAGE} entry under {cache_dir}, "
            f"found {len(entries)}"
        )
    return entries[0].digest


def _kill_mid_fit(cache_dir: Path) -> bool:
    """Start the fit and SIGKILL it after its first MD checkpoint.

    Returns False (attempt void) when the fit finished before the kill.
    """
    process = _repro(cache_dir=cache_dir)
    pattern = str(cache_dir / "checkpoints" / "*" / "md" / "epoch-*" / "state.json")
    try:
        deadline = time.time() + 180
        while time.time() < deadline:
            if glob.glob(pattern):
                break
            if process.poll() is not None:
                return False  # finished (or died) before any MD checkpoint
            time.sleep(0.002)
        else:
            raise AssertionError("no MD checkpoint appeared within 180s")
        if process.poll() is not None:
            return False  # finished in the polling gap
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=60)
        return True
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=60)


def main(workdir: str = ".ci_resume_smoke") -> int:
    sys.path.insert(0, "src")
    base = Path(workdir)
    shutil.rmtree(base, ignore_errors=True)

    interrupted = base / "interrupted"
    for attempt in range(1, ATTEMPTS + 1):
        shutil.rmtree(interrupted, ignore_errors=True)
        if _kill_mid_fit(interrupted):
            print(f"killed the fit mid-run (attempt {attempt})")
            break
        print(f"attempt {attempt}: fit outran the kill; retrying")
    else:
        raise AssertionError(f"could not kill the fit mid-run in {ATTEMPTS} attempts")

    # The killed run must have left checkpoints but no cached output.
    from repro.pipeline.cache import StageCache

    cache = StageCache(interrupted)
    assert not any(e.stage == STAGE for e in cache.entries()), (
        "killed run unexpectedly cached its output"
    )

    # Re-run: must resume (not refit) and record that in the manifest.
    rerun = _repro(cache_dir=interrupted)
    assert rerun.wait(timeout=600) == 0, "resumed run failed"

    from repro.pipeline import load_manifests

    manifests = [
        m for m in load_manifests(interrupted / "runs") if m.experiment == STAGE
    ]
    assert manifests, "resumed run wrote no manifest"
    record = {s.stage: s for s in manifests[-1].stages}[STAGE]
    assert record.training, "manifest is missing training metadata"
    md = record.training["md"]
    assert md["resumed_from"] is not None, f"no resume recorded: {md}"
    assert md["checkpoints"] >= 1 and md["checkpoint_digest"], md

    # Bitwise comparison against a never-interrupted fit.
    clean = base / "clean"
    uninterrupted = _repro(cache_dir=clean)
    assert uninterrupted.wait(timeout=600) == 0, "clean run failed"
    resumed_digest = _stage_digest(interrupted)
    clean_digest = _stage_digest(clean)
    assert resumed_digest == clean_digest, (
        f"resumed artifact {resumed_digest[:12]} != "
        f"uninterrupted {clean_digest[:12]}"
    )
    print(
        f"resume smoke OK: resumed from epoch {md['resumed_from']}, "
        f"{md['checkpoints']} checkpoint(s), digest {resumed_digest[:12]} "
        "matches the uninterrupted run bitwise"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
