"""Static lint: no bare ``print()`` in library code under ``src/repro``.

PR 8 gave the repo structured logging (:mod:`repro.obs.log`) and spans
(:mod:`repro.obs.trace`); library modules must use those — a stray
``print`` in the serving or training path corrupts machine-read stdout
(benchmark JSON, rendered artifacts) and bypasses every sink.  This
lint walks every module under the source root and flags ``print(...)``
calls, with three deliberate escapes:

* **CLI modules** — files named ``cli.py``, ``__main__.py`` or
  ``loadgen.py`` exist to talk to a human on stdout;
* **legacy entry points** — functions named ``main`` or ``main_*``
  (the pre-pipeline ``python -m repro.experiments`` paths) are CLIs in
  function form;
* the marker comment ``# lint: allow-print`` on the line (or the line
  above), for the rare justified exception — the marker forces the
  author to say so out loud.

Docstring examples that *mention* ``print`` are never flagged: the walk
is over AST call nodes, not text.

Usage::

    python tools/lint_no_print.py [src-root]

Exits non-zero listing every violation (CI runs this next to the
atomic-write lint).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files whose whole purpose is stdout (argparse CLIs and the loadgen).
ALLOWED_FILENAMES = {"cli.py", "__main__.py", "loadgen.py"}

#: Marker comment that declares one print as intentional.
ALLOW_MARKER = "# lint: allow-print"


def _is_entry_function(name: str) -> bool:
    """CLI-in-function-form: ``main`` / ``main_fig7`` / ``main_table1``."""
    return name == "main" or name.startswith("main_")


def _print_calls(tree: ast.AST):
    """Yield line numbers of ``print(...)`` calls outside entry functions.

    The walk is explicit (not ``ast.walk``) so each call knows whether
    an enclosing function is an entry point.
    """

    def visit(node: ast.AST, in_entry: bool):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_entry = in_entry or _is_entry_function(node.name)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not in_entry
        ):
            yield node.lineno
        for child in ast.iter_child_nodes(node):
            yield from visit(child, in_entry)

    yield from visit(tree, False)


def lint_file(path: Path, rel: str) -> list:
    """Every unmarked bare print in one library module."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    problems = []
    for lineno in _print_calls(ast.parse(source, filename=str(path))):
        window = lines[max(0, lineno - 2) : lineno]
        if any(ALLOW_MARKER in line for line in window):
            continue
        problems.append(
            f"{rel}:{lineno}: bare print() in library code — use "
            f"repro.obs.log.get_logger(...) (or mark the line "
            f"'{ALLOW_MARKER}' if stdout really is the interface)"
        )
    return problems


def main(argv) -> int:
    """Lint every module under ``<src-root>/repro``; 0 = clean."""
    root = Path(argv[1]) if len(argv) > 1 else Path("src")
    package = root / "repro"
    if not package.is_dir():
        print(f"error: {package} is not a directory")
        return 2
    problems = []
    checked = 0
    for path in sorted(package.rglob("*.py")):
        if path.name in ALLOWED_FILENAMES:
            continue
        checked += 1
        rel = str(path.relative_to(root))
        problems.extend(lint_file(path, rel))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} bare-print violation(s)")
        return 1
    print(f"no-print lint: {checked} library modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
