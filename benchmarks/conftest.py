"""Shared fixtures for the benchmark suite.

Benchmarks regenerate each paper table/figure at a reduced-but-
representative scale and assert the *qualitative* orderings the paper
reports (who wins, by roughly what factor).  Expensive setups are session-
scoped so the data is built once.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.experiments import Scale, load_chronic


@pytest.fixture(scope="session")
def bench_scale():
    return Scale.small()


@pytest.fixture(scope="session")
def chronic_data(bench_scale):
    return load_chronic(bench_scale)
