"""Benchmarks: regenerate the data behind Fig. 2, 3, 7, 8 and 9."""

import numpy as np
import pytest

from repro.experiments import (
    Scale,
    run_fig2,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
)


class TestFig2:
    def test_bench_fig2(self, benchmark):
        result = benchmark.pedantic(
            lambda: run_fig2(num_patients=4157), rounds=1, iterations=1
        )
        # Fig. 2 shape: hypertension ~49% of the pie, cardiovascular ~22%.
        ordered = sorted(result.shares, key=result.shares.get, reverse=True)
        assert ordered[0] == "hypertension"
        assert ordered[1] == "cardiovascular"
        assert result.shares["hypertension"] > 0.30
        assert abs(sum(result.shares.values()) - 1.0) < 1e-9


class TestFig3:
    def test_bench_fig3(self, benchmark):
        result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
        assert sum(result.counts.values()) == 86
        top_two = sorted(result.counts, key=result.counts.get, reverse=True)[:2]
        assert set(top_two) == {"hypertension", "cardiovascular"}


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self, chronic_data, bench_scale):
        return run_fig7(scale=bench_scale, data=chronic_data)

    def test_bench_fig7(self, benchmark, chronic_data, bench_scale):
        result = benchmark.pedantic(
            lambda: run_fig7(scale=bench_scale, data=chronic_data),
            rounds=1,
            iterations=1,
        )
        assert set(result.patient_smoothing) == {"DSSDDI", "LightGCN"}

    def test_lightgcn_patients_oversmoothed(self, fig7):
        """Fig. 7a: LightGCN's convolved patient reps are far more similar
        to each other than DSSDDI's pre-propagation ones."""
        assert fig7.patient_smoothing["LightGCN"] > fig7.patient_smoothing["DSSDDI"]

    def test_dssddi_drugs_structured(self, fig7):
        """Fig. 7b: DSSDDI drug reps carry disease-class structure — drugs
        treating the same disease are measurably more similar to each other
        than to other classes."""
        assert fig7.drug_structure["DSSDDI"] > 0.02
        assert fig7.drug_structure["DSSDDI"] >= 0.6 * fig7.drug_structure["LightGCN"]

    def test_similarity_matrices_valid(self, fig7):
        for sim in fig7.patient_similarity.values():
            assert np.allclose(np.diag(sim), 1.0)
            assert sim.min() >= -1.0 - 1e-9 and sim.max() <= 1.0 + 1e-9


class TestFig8:
    @pytest.fixture(scope="class")
    def fig8(self, chronic_data, bench_scale):
        return run_fig8(scale=bench_scale, data=chronic_data)

    def test_bench_fig8(self, benchmark, chronic_data, bench_scale):
        result = benchmark.pedantic(
            lambda: run_fig8(scale=bench_scale, data=chronic_data),
            rounds=1,
            iterations=1,
        )
        assert "DSSDDI" in result.explanations

    def test_all_methods_explained(self, fig8):
        assert {"DSSDDI", "LightGCN", "GCMC", "SVM", "ECC"} <= set(fig8.explanations)

    def test_dssddi_suggestion_not_worse_on_internal_antagonism(self, fig8):
        """Fig. 8: DSSDDI avoids antagonism inside its suggestion at least
        as well as the weakest baseline (ECC suggests antagonistic drugs)."""
        dssddi = len(fig8.explanations["DSSDDI"].antagonism_within)
        worst = max(
            len(e.antagonism_within) for e in fig8.explanations.values()
        )
        assert dssddi <= worst

    def test_renders(self, fig8):
        text = fig8.render()
        assert "DSSDDI" in text and "Suggestion Satisfaction" in text


class TestFig9:
    def test_bench_fig9(self, benchmark, chronic_data, bench_scale):
        result = benchmark.pedantic(
            lambda: run_fig9(scale=bench_scale, data=chronic_data),
            rounds=1,
            iterations=1,
        )
        # The pinned case interactions exist in every generated DDI graph;
        # whether a matching patient exists depends on the cohort sample —
        # require at least the two common cases to materialize.
        assert len(result.cases) >= 2
        for case in result.cases:
            assert case.render()
