"""Benchmark: regenerate the Table II drug-embedding ablation.

Asserts the paper's qualitative finding: learned DDIGCN embeddings are the
best choice (in the paper's full-scale runs they beat KG, one-hot and
w/o-DDI on every metric; at bench scale we require DDIGCN to be at worst
within noise of the best variant and strictly better than one-hot on NDCG).
"""

import pytest

from repro.experiments import run_table2


@pytest.fixture(scope="module")
def table2_result(chronic_data, bench_scale):
    return run_table2(scale=bench_scale, data=chronic_data)


def test_bench_table2(benchmark, chronic_data, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table2(scale=bench_scale, data=chronic_data),
        rounds=1,
        iterations=1,
    )
    assert set(result.metrics) == {"w/o DDI", "One-hot", "KG", "DDIGCN"}


class TestTable2Shape:
    """At bench scale the paper's ablation deltas (~5-10% relative) sit
    inside seed noise, so the assertions here are the robust subset: every
    variant must genuinely learn, and no variant may collapse — the paper's
    qualitative point that the drug-embedding choice is a second-order
    effect relative to the rest of the system.  EXPERIMENTS.md discusses
    the full-scale ordering."""

    def test_all_variants_present(self, table2_result):
        assert set(table2_result.metrics) == {"w/o DDI", "One-hot", "KG", "DDIGCN"}

    def test_every_variant_learns(self, table2_result):
        """All variants must far exceed random ranking (R@6 random ~ 6/86)."""
        for variant, by_k in table2_result.metrics.items():
            assert by_k[6]["recall"] > 0.15, variant

    def test_no_variant_collapses(self, table2_result):
        m = table2_result.metrics
        best = max(m[v][6]["ndcg"] for v in m)
        for variant in m:
            assert m[variant][6]["ndcg"] >= 0.5 * best, variant

    def test_values_in_range(self, table2_result):
        for variant, by_k in table2_result.metrics.items():
            for entry in by_k.values():
                assert all(0.0 <= v <= 1.0 for v in entry.values()), variant
