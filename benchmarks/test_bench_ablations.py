"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper tables; they probe the reproduction's own design
space: counterfactual loss weight delta, propagation depth (over-smoothing),
the zero-edge sampling ratio of DDIGCN, the SS alpha balance, and the
counterfactual gamma thresholds.
"""

import numpy as np
import pytest

from repro.causal import build_counterfactual_links, suggest_gammas
from repro.core import DSSDDI, DDIModule, DDIGCNConfig
from repro.experiments import dssddi_config
from repro.metrics import (
    cosine_similarity_matrix,
    ndcg_at_k,
    offdiagonal_mean,
    suggestion_satisfaction,
)


class TestDeltaSweep:
    """Counterfactual loss weight: delta = 0 recovers plain training."""

    @pytest.fixture(scope="class")
    def sweep(self, chronic_data, bench_scale):
        results = {}
        for delta in (0.0, 1.0, 4.0):
            cfg = dssddi_config(bench_scale, "sgcn")
            cfg.md.delta = delta
            cfg.md.epochs = 150
            cfg.ddi.epochs = 80
            system = DSSDDI(cfg)
            system.fit(chronic_data.x_train, chronic_data.y_train, chronic_data.cohort.ddi)
            scores = system.predict_scores(chronic_data.x_test)
            results[delta] = ndcg_at_k(scores, chronic_data.y_test, 6)
        return results

    def test_bench_delta_sweep(self, benchmark, sweep):
        benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
        assert len(sweep) == 3

    def test_all_deltas_learn(self, sweep):
        assert all(v > 0.15 for v in sweep.values()), sweep

    def test_moderate_delta_not_catastrophic(self, sweep):
        """delta=1 (paper default) must be within 25% of the sweep's best."""
        assert sweep[1.0] >= 0.75 * max(sweep.values())


class TestPropagationDepth:
    """Over-smoothing: deeper propagation -> more similar patient reps."""

    def test_bench_depth_oversmoothing(self, benchmark, chronic_data):
        from repro.gnn import LightGCNPropagation, bipartite_propagation
        from repro.graph import BipartiteGraph
        from repro.nn import Tensor

        y = chronic_data.y_train
        rng = np.random.default_rng(0)
        h_p = Tensor(rng.normal(size=(y.shape[0], 16)))
        h_d = Tensor(rng.normal(size=(y.shape[1], 16)))
        p2d, d2p = bipartite_propagation(BipartiteGraph.from_matrix(y))

        def sweep():
            sims = {}
            for depth in (1, 2, 4):
                weights = [0.0] * depth + [1.0]  # isolate the deepest layer
                prop = LightGCNPropagation(depth, weights)
                hp, _ = prop(h_p, h_d, p2d, d2p)
                sims[depth] = offdiagonal_mean(cosine_similarity_matrix(hp.numpy()))
            return sims

        sims = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Starting from independent random features (expected cosine ~ 0),
        # every additional propagation hop makes patients measurably more
        # similar — the over-smoothing Fig. 7 is about.
        assert sims[1] < sims[2] < sims[4], sims
        assert sims[4] > 0.2


class TestZeroEdgeRatio:
    """DDIGCN's sampled no-interaction edges: ratio 0 vs 1 vs 3."""

    def test_bench_zero_edge_sweep(self, benchmark, chronic_data):
        graph = chronic_data.cohort.ddi.graph

        def sweep():
            separations = {}
            for ratio in (0.0, 1.0, 3.0):
                cfg = DDIGCNConfig(
                    backbone="sgcn", hidden_dim=32, num_layers=2,
                    epochs=120, zero_edge_ratio=ratio,
                )
                module = DDIModule(cfg)
                module.fit(graph)
                syn = module.edge_scores(chronic_data.cohort.ddi.synergy)
                ant = module.edge_scores(chronic_data.cohort.ddi.antagonism)
                separations[ratio] = float(syn.mean() - ant.mean())
            return separations

        separations = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Sign separation must be positive at every ratio.
        assert all(v > 0 for v in separations.values()), separations


class TestAlphaBalance:
    """SS alpha: higher alpha weights internal synergy more."""

    def test_bench_alpha_sweep(self, benchmark, chronic_data):
        graph = chronic_data.cohort.ddi.graph
        synergy_pair = list(chronic_data.cohort.ddi.synergy[0])
        antagonism_pair = list(chronic_data.cohort.ddi.antagonism[0])

        def sweep():
            gaps = {}
            for alpha in (0.25, 0.5, 0.75):
                syn = suggestion_satisfaction(graph, synergy_pair, alpha=alpha).value
                ant = suggestion_satisfaction(graph, antagonism_pair, alpha=alpha).value
                gaps[alpha] = syn - ant
            return gaps

        gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # alpha weights the internal-synergy term: the synergy-vs-antagonism
        # gap must grow with alpha and be positive once the internal term
        # dominates (alpha >= 0.5).  At low alpha the avoided-antagonist
        # context term can legitimately favour either pair.
        assert gaps[0.75] > gaps[0.5] > gaps[0.25]
        assert gaps[0.5] > 0 and gaps[0.75] > 0


class TestGammaThresholds:
    """Counterfactual matching radius: larger gammas -> higher match rate."""

    def test_bench_gamma_sweep(self, benchmark, chronic_data):
        x = chronic_data.x_train[:100]
        y = chronic_data.y_train[:100]
        z = np.eye(y.shape[1])
        treatment = (y > 0).astype(int)

        def sweep():
            rates = {}
            base_p, base_d = suggest_gammas(x, z, quantile=0.25)
            for factor in (0.5, 1.0, 2.0):
                links = build_counterfactual_links(
                    x, z, treatment, y, base_p * factor, base_d * factor
                )
                rates[factor] = links.match_rate
            return rates

        rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert rates[0.5] <= rates[1.0] <= rates[2.0]


class TestDDIAwareReranking:
    """Extension ablation: greedy DDI-aware top-k vs plain top-k.

    The decision-layer re-ranker must strictly reduce antagonistic pairs
    inside suggestions while keeping the ranking metrics close — the
    safety/accuracy trade-off the paper's MS module surfaces to doctors.
    """

    def test_bench_rerank_tradeoff(self, benchmark, chronic_data, bench_scale):
        from repro.core import DSSDDI, RerankConfig, antagonism_count, rerank_topk
        from repro.experiments import dssddi_config
        from repro.metrics import top_k_indices

        cfg = dssddi_config(bench_scale, "sgcn")
        cfg.md.epochs = 150
        cfg.ddi.epochs = 80
        system = DSSDDI(cfg)
        system.fit(chronic_data.x_train, chronic_data.y_train, chronic_data.cohort.ddi)
        scores = system.predict_scores(chronic_data.x_test)
        graph = chronic_data.cohort.ddi.graph

        def run():
            plain = top_k_indices(scores, 5)
            hard = rerank_topk(
                scores, graph, 5,
                RerankConfig(antagonism_penalty=1.0, hard_exclude=True),
            )
            plain_conflicts = sum(antagonism_count(r, graph) for r in plain)
            hard_conflicts = sum(antagonism_count(r, graph) for r in hard)
            overlap = np.mean([
                len(set(p) & set(h)) / 5.0 for p, h in zip(plain, hard)
            ])
            return plain_conflicts, hard_conflicts, overlap

        plain_conflicts, hard_conflicts, overlap = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        assert hard_conflicts <= plain_conflicts
        assert overlap > 0.6  # the reranked lists stay close to the originals
