"""Benchmark: sparse propagation backend + hot-path optimizations.

Measures this PR's two speedup claims on a synthetic large cohort
(m=5000 patients, n=500 drugs, ~1% link density — the regime where the
patient-drug graph is >99% empty):

* **fit (per-epoch wall time)**: one MDGCN training epoch under the new
  pipeline (CSR propagation, fused LightGCN scan, fused pair decoder,
  CSR scatter-adds) versus the *dense baseline* — a faithful replica of
  the seed implementation's epoch (dense adjacencies, op-by-op autograd
  propagation, generic gather/concat/MLP decode with ``np.add.at``
  scatters).  Both arms run the identical training semantics (same
  full-batch 1:1 negative sampling, same arithmetic — the new pipeline
  is bitwise-equal per step); timings are interleaved best-of so slow
  scheduler phases hit both arms alike.
* **predict**: ``predict_scores`` throughput with the cached drug
  representations + chunked scoring versus the seed path, which
  re-encoded the whole training set through the propagation on every
  call.

Both speedups must be >= 3x, and the sparse and dense backends must
agree within 1e-9 on ``predict_scores`` for identical fitted weights.
The model uses a deep propagation stack (6 LightGCN layers) so the
subsystem under test — propagation — carries realistic weight; the
decoder cost is identical in both arms.  Results land in
``BENCH_propagation.json`` at the repo root so the perf trajectory is
recorded from this PR onward.  Set ``BENCH_PROP_SMOKE=1`` for the
reduced-size CI smoke run (equivalence asserted, speedups only logged).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import MDGCNConfig, MDModule
from repro.graph import SignedGraph
from repro.nn import Adam, Tensor, bce_with_logits, concat, matmul_fixed
from repro.nn import sparse as sparse_backend

pytest.importorskip("scipy.sparse")

SMOKE = os.environ.get("BENCH_PROP_SMOKE") == "1"
M, N, DENSITY = (600, 120, 0.03) if SMOKE else (5000, 500, 0.01)
FEATURE_DIM = 12
HIDDEN = 32
NUM_LAYERS = 6
ROUNDS = 3 if SMOKE else 8
PREDICT_BATCH = 64
MIN_SPEEDUP = 3.0
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_propagation.json"
)

RESULTS = {
    "cohort": {
        "patients": M,
        "drugs": N,
        "target_density": DENSITY,
        "smoke": SMOKE,
    },
    "model": {"hidden_dim": HIDDEN, "num_layers": NUM_LAYERS},
}


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(RESULTS, fh, indent=2)
    print(f"\nwrote {os.path.abspath(RESULTS_PATH)}")


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(19)
    x = rng.normal(size=(M, FEATURE_DIM))
    y = (rng.random((M, N)) < DENSITY).astype(np.int64)
    y[np.arange(M), rng.integers(0, N, size=M)] = 1  # no linkless patients
    z = rng.normal(size=(N, FEATURE_DIM))
    graph = SignedGraph(N)
    pairs = {
        (int(u), int(v))
        for u, v in rng.integers(0, N, size=(3 * N, 2))
        if u != v
    }
    for i, (u, v) in enumerate(sorted(pairs)):
        graph.add_edge(u, v, 1 if i % 3 else -1)
    RESULTS["cohort"]["links"] = int(y.sum())
    RESULTS["cohort"]["density"] = float(y.mean())
    return x, y, z, graph


def _config(backend: str) -> MDGCNConfig:
    return MDGCNConfig(
        epochs=1,
        hidden_dim=HIDDEN,
        num_layers=NUM_LAYERS,
        use_counterfactual=False,
        num_clusters=8,
        propagation_backend=backend,
        seed=5,
    )


def _fitted(cohort, backend: str) -> MDModule:
    x, y, z, graph = cohort
    module = MDModule(_config(backend))
    module.fit(x, y, z, graph, None)
    return module


def _epoch_step_new(module: MDModule, cohort):
    """One epoch of ``MDModule.fit``'s training loop (the new pipeline)."""
    x, y, z, _graph = cohort
    positives = np.argwhere(y == 1)
    zero_rows, zero_cols = np.nonzero(y == 0)
    x_t, z_t = Tensor(x), Tensor(z)
    optimizer = Adam(
        module._patient_fc.parameters()
        + module._drug_fc.parameters()
        + module._decoder.parameters(),
        lr=module.config.learning_rate,
    )
    rng = np.random.default_rng(0)

    def step():
        optimizer.zero_grad()
        h_patients, h_drugs = module._encode(x_t, z_t)
        neg_idx = rng.integers(0, len(zero_rows), size=len(positives))
        batch_i = np.concatenate([positives[:, 0], zero_rows[neg_idx]])
        batch_v = np.concatenate([positives[:, 1], zero_cols[neg_idx]])
        labels = np.concatenate(
            [np.ones(len(positives)), np.zeros(len(positives))]
        )
        logits = module._decode(
            h_patients, h_drugs, batch_i, batch_v,
            module._treatment[batch_i, batch_v],
        )
        loss = bce_with_logits(logits, labels)
        loss.backward()
        optimizer.step()

    return step


def _epoch_step_seed(module: MDModule, cohort):
    """One epoch exactly as the seed implemented it: dense adjacencies
    (the module is fitted with the dense backend), the op-by-op autograd
    propagation loop, and the generic gather/concat/MLP decode whose
    backward scatters with ``np.add.at``."""
    x, y, z, _graph = cohort
    positives = np.argwhere(y == 1)
    zero_rows, zero_cols = np.nonzero(y == 0)
    x_t, z_t = Tensor(x), Tensor(z)
    optimizer = Adam(
        module._patient_fc.parameters()
        + module._drug_fc.parameters()
        + module._decoder.parameters(),
        lr=module.config.learning_rate,
    )
    rng = np.random.default_rng(0)
    weights = module._propagation.layer_weights

    def encode():
        h_patients = module._patient_fc(x_t).leaky_relu()
        h_drugs = module._drug_fc(z_t).leaky_relu()
        patients_combined = h_patients * weights[0]
        drugs_combined = h_drugs * weights[0]
        current_p, current_d = h_patients, h_drugs
        for t in range(1, module._propagation.num_layers + 1):
            current_p, current_d = (
                matmul_fixed(module._p2d, current_d),
                matmul_fixed(module._d2p, current_p),
            )
            patients_combined = patients_combined + current_p * weights[t]
            drugs_combined = drugs_combined + current_d * weights[t]
        return h_patients, drugs_combined

    def step():
        optimizer.zero_grad()
        h_patients, h_drugs = encode()
        neg_idx = rng.integers(0, len(zero_rows), size=len(positives))
        batch_i = np.concatenate([positives[:, 0], zero_rows[neg_idx]])
        batch_v = np.concatenate([positives[:, 1], zero_cols[neg_idx]])
        labels = np.concatenate(
            [np.ones(len(positives)), np.zeros(len(positives))]
        )
        h_i = h_patients[batch_i]          # Tensor.__getitem__: np.add.at
        h_v = h_drugs[batch_v]
        t_col = Tensor(
            module._treatment[batch_i, batch_v].astype(np.float64).reshape(-1, 1)
        )
        logits = module._decoder(concat([h_i * h_v, t_col], axis=1)).reshape(-1)
        loss = bce_with_logits(logits, labels)
        loss.backward()
        optimizer.step()

    return step


def _interleaved_best(steppers, rounds: int):
    """Best-of timing with the arms interleaved each round, so scheduler
    slow phases penalize all arms equally."""
    for stepper in steppers:  # warm-up
        stepper()
    best = [float("inf")] * len(steppers)
    for _ in range(rounds):
        for i, stepper in enumerate(steppers):
            start = time.perf_counter()
            stepper()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def test_bench_fit_epoch_speedup(cohort):
    """MDGCN fit epoch: new sparse pipeline >= 3x over the seed's dense
    baseline (dense backend timings also recorded)."""
    dense_module = _fitted(cohort, "dense")
    sparse_module = _fitted(cohort, "sparse")
    assert sparse_backend.is_sparse(sparse_module._p2d)
    assert not sparse_backend.is_sparse(dense_module._p2d)

    seed_t, new_dense_t, new_sparse_t = _interleaved_best(
        [
            _epoch_step_seed(dense_module, cohort),
            _epoch_step_new(dense_module, cohort),
            _epoch_step_new(sparse_module, cohort),
        ],
        ROUNDS,
    )
    speedup = seed_t / new_sparse_t
    RESULTS["fit"] = {
        "seed_dense_epoch_seconds": seed_t,
        "new_dense_epoch_seconds": new_dense_t,
        "new_sparse_epoch_seconds": new_sparse_t,
        "speedup_vs_seed": speedup,
        "speedup_backend_only": new_dense_t / new_sparse_t,
    }
    print(
        f"\nfit epoch: seed-dense {seed_t * 1e3:.0f} ms, new-dense "
        f"{new_dense_t * 1e3:.0f} ms, new-sparse {new_sparse_t * 1e3:.0f} ms "
        f"-> {speedup:.1f}x vs seed ({new_dense_t / new_sparse_t:.1f}x backend-only)"
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def _naive_predict(module: MDModule, feats: np.ndarray) -> np.ndarray:
    """Replica of the seed ``predict_scores``: re-encode the training set
    through the propagation on every call, then decode all rows at once."""
    x = np.asarray(feats, dtype=np.float64)
    treatment = module.treatment_for(x)
    _h_p, h_drugs = module._encode(
        Tensor(module._x_train), Tensor(module._z_drugs)
    )
    h_new = module._patient_fc(Tensor(x)).leaky_relu()
    n_drugs = module._y_train.shape[1]
    num = x.shape[0]
    patient_idx = np.repeat(np.arange(num), n_drugs)
    drug_idx = np.tile(np.arange(n_drugs), num)
    logits = module._decode(
        h_new, h_drugs, patient_idx, drug_idx, treatment[patient_idx, drug_idx]
    )
    return logits.sigmoid().numpy().reshape(num, n_drugs)


def test_bench_predict_speedup_and_equivalence(cohort):
    """Cached+chunked+sparse predict_scores >= 3x over the seed path,
    agreeing with it — and across backends — within 1e-9."""
    x, _y, _z, graph = cohort
    dense_module = _fitted(cohort, "dense")
    sparse_module = MDModule.from_state(
        _config("sparse"), dense_module.export_state(), graph
    )
    assert sparse_backend.is_sparse(sparse_module._p2d)

    batch = x[:PREDICT_BATCH]
    naive = _naive_predict(dense_module, batch)
    fast = sparse_module.predict_scores(batch)  # warm: builds the rep cache
    np.testing.assert_allclose(fast, naive, atol=1e-9)
    np.testing.assert_allclose(
        dense_module.predict_scores(batch), fast, atol=1e-9
    )

    t_naive, t_fast = _interleaved_best(
        [
            lambda: _naive_predict(dense_module, batch),
            lambda: sparse_module.predict_scores(batch),
        ],
        ROUNDS,
    )
    speedup = t_naive / t_fast
    RESULTS["predict"] = {
        "batch": PREDICT_BATCH,
        "naive_seconds": t_naive,
        "cached_seconds": t_fast,
        "naive_patients_per_second": PREDICT_BATCH / t_naive,
        "cached_patients_per_second": PREDICT_BATCH / t_fast,
        "speedup": speedup,
        "max_abs_diff": float(np.abs(fast - naive).max()),
    }
    print(
        f"\npredict batch {PREDICT_BATCH}: naive {t_naive * 1e3:.1f} ms vs "
        f"cached+sparse {t_fast * 1e3:.1f} ms -> {speedup:.1f}x "
        f"({PREDICT_BATCH / t_fast:.0f} patients/s)"
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP
