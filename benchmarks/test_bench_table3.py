"""Benchmark: regenerate Table III (Suggestion Satisfaction).

The paper's claim: DSSDDI suggests drug sets with more internal synergy and
more avoided antagonists, so its SS@k clearly beats the non-DDI-aware
methods at the polypharmacy-relevant cutoffs (k >= 4).
"""

import pytest

from repro.experiments import run_table3

METHODS = ("ECC", "SVM", "SafeDrug", "LightGCN", "DSSDDI(SGCN)")


@pytest.fixture(scope="module")
def table3_result(chronic_data, bench_scale):
    return run_table3(scale=bench_scale, methods=METHODS, data=chronic_data)


def test_bench_table3(benchmark, chronic_data, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table3(
            scale=bench_scale, methods=("DSSDDI(SGCN)",), data=chronic_data
        ),
        rounds=1,
        iterations=1,
    )
    assert "DSSDDI(SGCN)" in result.satisfaction


class TestTable3Shape:
    def test_dssddi_beats_traditional_at_k4(self, table3_result):
        ss = table3_result.satisfaction
        for weak in ("ECC", "SVM"):
            assert ss["DSSDDI(SGCN)"][4] > ss[weak][4]

    def test_dssddi_beats_traditional_at_k5_and_6(self, table3_result):
        ss = table3_result.satisfaction
        for k in (5, 6):
            traditional_best = max(ss["ECC"][k], ss["SVM"][k])
            assert ss["DSSDDI(SGCN)"][k] > traditional_best

    def test_ss_values_in_unit_interval(self, table3_result):
        for method, by_k in table3_result.satisfaction.items():
            for k, value in by_k.items():
                assert 0.0 <= value <= 1.0, (method, k)

    def test_ss_decreases_with_k(self, table3_result):
        """Larger suggestion sets dilute synergy (paper: SS@2 >> SS@6)."""
        for method, by_k in table3_result.satisfaction.items():
            assert by_k[2] > by_k[6], method
