"""Benchmark: training-engine hot paths.

Two claims from the unified-training-engine PR:

* ``LightGCNRecommender.predict_scores`` no longer re-runs the encoder
  over the full training graph per call: the post-propagation drug
  representations are cached at fit end, so repeated calls are >= 5x
  faster than the uncached encode they replace (measured by comparing
  against a deliberate cache invalidation).
* Checkpointing through ``repro.train.Checkpoint`` is cheap relative to
  an epoch of training — the overhead of ``every_n=1`` checkpointing on
  a small MD fit stays under the cost of the fit itself.
"""

import time

import numpy as np
import pytest

from repro.baselines import LightGCNRecommender
from repro.data import generate_chronic_cohort, split_patients, standardize_features

#: Floor for the cached-predict speedup asserted below.
PREDICT_SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def fitted_lightgcn():
    # A serving-shaped setup: a large observed cohort behind the model,
    # small per-request batches in front of it.  The cold path re-runs
    # the encoder over all observed patients; the warm path only touches
    # the request rows.
    cohort = generate_chronic_cohort(num_patients=1000, seed=3)
    x = standardize_features(cohort.features)
    split = split_patients(1000, seed=1)
    model = LightGCNRecommender(hidden_dim=32, epochs=15)
    model.fit(x[split.train], cohort.medications[split.train])
    return model, x[split.test]


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_lightgcn_predict_cache_speedup(fitted_lightgcn):
    """Cached repeat predictions must be >= 5x faster than re-encoding."""
    model, x_test = fitted_lightgcn
    batch = x_test[:32]

    def cold():
        model._rep_cache = None  # force the full-graph re-encode
        model.predict_scores(batch)

    def warm():
        model.predict_scores(batch)

    model.predict_scores(batch)  # ensure the cache is populated
    cold_s = _best_of(cold)
    model.predict_scores(batch)  # repopulate after the last invalidation
    warm_s = _best_of(warm)
    speedup = cold_s / warm_s
    print(
        f"\nlightgcn predict_scores: cold {cold_s * 1e3:.2f} ms, "
        f"warm {warm_s * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= PREDICT_SPEEDUP_FLOOR, (
        f"cached predict_scores only {speedup:.1f}x faster than the "
        f"re-encoding path (floor {PREDICT_SPEEDUP_FLOOR}x)"
    )


def test_bench_lightgcn_cache_is_score_neutral(fitted_lightgcn):
    """The cache must not change a single output bit."""
    model, x_test = fitted_lightgcn
    batch = x_test[:32]
    warm = model.predict_scores(batch)
    model._rep_cache = None
    cold = model.predict_scores(batch)
    np.testing.assert_array_equal(warm, cold)


def test_bench_checkpoint_overhead(tmp_path):
    """every_n=1 checkpointing must cost less than the fit itself."""
    from repro.core import MDGCNConfig
    from repro.core.md_module import MDModule

    cohort = generate_chronic_cohort(num_patients=150, seed=5)
    x = standardize_features(cohort.features)
    y = cohort.medications
    n = y.shape[1]

    def fit(checkpoint_dir=None):
        module = MDModule(MDGCNConfig(hidden_dim=16, epochs=15))
        started = time.perf_counter()
        module.fit(
            x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=1,
        )
        return time.perf_counter() - started

    plain = min(fit(), fit())
    checkpointed = min(
        fit(tmp_path / "a"), fit(tmp_path / "b")
    )
    overhead = checkpointed - plain
    print(
        f"\nMD fit: plain {plain:.3f}s, checkpointed(every=1) "
        f"{checkpointed:.3f}s, overhead {max(overhead, 0.0):.3f}s"
    )
    assert checkpointed < plain * 3.0, (
        f"per-epoch checkpointing tripled the fit "
        f"({plain:.3f}s -> {checkpointed:.3f}s)"
    )
