"""Benchmark: regenerate Table I (medication suggestion, chronic data).

Runs a representative method subset (one per family: traditional,
graph-based baseline, DSSDDI) at small scale and asserts the paper's
qualitative ordering: DSSDDI > graph baselines > traditional methods.
"""

import pytest

from repro.experiments import Scale, run_table1

METHODS = ("UserSim", "ECC", "SVM", "LightGCN", "Bipar-GCN", "DSSDDI(SGCN)", "DSSDDI(GIN)")


@pytest.fixture(scope="module")
def table1_result(chronic_data, bench_scale):
    return run_table1(scale=bench_scale, methods=METHODS, data=chronic_data)


def test_bench_table1(benchmark, chronic_data, bench_scale):
    """Time one DSSDDI(SGCN) table row (fit + evaluate)."""
    result = benchmark.pedantic(
        lambda: run_table1(
            scale=bench_scale, methods=("DSSDDI(SGCN)",), data=chronic_data
        ),
        rounds=1,
        iterations=1,
    )
    assert "DSSDDI(SGCN)" in result.metrics


class TestTable1Shape:
    """The qualitative claims of Table I."""

    def test_graph_methods_beat_traditional(self, table1_result):
        m = table1_result.metrics
        traditional_best = max(m[x][6]["recall"] for x in ("UserSim", "ECC", "SVM"))
        for graph_method in ("LightGCN", "DSSDDI(SGCN)", "DSSDDI(GIN)"):
            assert m[graph_method][6]["recall"] > traditional_best

    def test_dssddi_family_wins_recall_at_6(self, table1_result):
        m = table1_result.metrics
        dssddi_best = max(m["DSSDDI(SGCN)"][6]["recall"], m["DSSDDI(GIN)"][6]["recall"])
        baseline_best = max(
            m[x][6]["recall"] for x in ("UserSim", "ECC", "SVM", "LightGCN", "Bipar-GCN")
        )
        assert dssddi_best >= baseline_best * 0.95  # wins or ties within 5%

    def test_svm_is_weak(self, table1_result):
        """SVM trails the graph methods by a wide margin (paper: 3-4x)."""
        m = table1_result.metrics
        assert m["DSSDDI(SGCN)"][6]["recall"] > 2 * m["SVM"][6]["recall"]

    def test_all_metrics_in_range(self, table1_result):
        for method, by_k in table1_result.metrics.items():
            for k, entry in by_k.items():
                for value in entry.values():
                    assert 0.0 <= value <= 1.0, (method, k)

    def test_recall_monotone_in_k(self, table1_result):
        for method, by_k in table1_result.metrics.items():
            recalls = [by_k[k]["recall"] for k in sorted(by_k)]
            assert recalls == sorted(recalls), method
