"""Benchmark: regenerate Table IV (synthetic MIMIC-III validation).

Paper shape: every strong method lands in a narrow band (all within ~5% of
each other), graph methods lead, CauseRec collapses (it cannot exploit
first-visit-style features), and DSSDDI(GIN) is at the top of the band.
"""

import pytest

from repro.experiments import Scale, run_table4

METHODS = ("UserSim", "ECC", "LightGCN", "CauseRec", "DSSDDI(GIN)")


@pytest.fixture(scope="module")
def table4_result(bench_scale):
    return run_table4(scale=bench_scale, methods=METHODS, num_patients=500)


def test_bench_table4(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table4(
            scale=bench_scale, methods=("DSSDDI(GIN)",), num_patients=500
        ),
        rounds=1,
        iterations=1,
    )
    assert "DSSDDI(GIN)" in result.metrics


class TestTable4Shape:
    def test_causerec_collapses(self, table4_result):
        """Paper: CauseRec P@8 = 0.12 vs everyone else >= 0.54."""
        m = table4_result.metrics
        assert m["CauseRec"][8]["precision"] < 0.8 * m["DSSDDI(GIN)"][8]["precision"]

    def test_dssddi_in_top_band(self, table4_result):
        m = table4_result.metrics
        best = max(m[x][8]["ndcg"] for x in m)
        assert m["DSSDDI(GIN)"][8]["ndcg"] >= 0.85 * best

    def test_dssddi_beats_usersim(self, table4_result):
        m = table4_result.metrics
        assert m["DSSDDI(GIN)"][8]["ndcg"] > m["UserSim"][8]["ndcg"]

    def test_values_in_range(self, table4_result):
        for method, by_k in table4_result.metrics.items():
            for entry in by_k.values():
                assert all(0.0 <= v <= 1.0 for v in entry.values()), method
