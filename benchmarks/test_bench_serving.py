"""Benchmark: serving throughput (suggestions/sec) and cache hit rate.

Measures the fit-once/serve-many path added by ``repro.serving``:

* batched suggestion scoring at batch sizes 1 / 32 / 512, against the
  per-patient ``DSSDDI.suggest`` loop a naive deployment would run,
* the explanation cache hit rate under skewed (real-traffic-like) load.

The headline acceptance claim: batched scoring is >= 1.5x faster than
the per-patient loop at batch 512.  (The floor was 5x when the core
``predict_scores`` re-encoded the training set on every call; the
sparse-backend PR moved that caching into ``MDModule`` itself, so the
per-patient loop got dramatically faster and the batched edge now comes
from batching alone — measured 2-5x depending on machine load, so the
floor keeps a conservative margin.)
"""

import time

import numpy as np
import pytest

from repro.core import DSSDDI, DSSDDIConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.serving import SuggestionService

BATCH_SIZES = (1, 32, 512)
K = 3


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """Fit a small system, persist it, and serve it from the artifact."""
    cohort = generate_chronic_cohort(num_patients=200, seed=3)
    x = standardize_features(cohort.features)
    split = split_patients(200, seed=1)
    cfg = DSSDDIConfig.fast()
    cfg.ddi.epochs = 15
    cfg.md.epochs = 40
    system = DSSDDI(cfg)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    path = tmp_path_factory.mktemp("serving") / "model"
    system.save(path)
    service = SuggestionService.load(path)
    # Warm both paths so one-time BLAS/threading setup is off the clock;
    # the large batch matters, as big matmuls hit a different kernel path.
    pool = x[split.test]
    service.suggest(_batches(pool, max(BATCH_SIZES), seed=0), k=K)
    system.suggest(pool[:1], k=K)
    return system, service, pool


def _batches(pool: np.ndarray, size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return pool[rng.integers(0, len(pool), size=size)]


def test_bench_batched_throughput(served, benchmark):
    """Suggestions/sec of the batched service across batch sizes."""
    _system, service, pool = served
    rates = {}
    for size in BATCH_SIZES:
        batch = _batches(pool, size, seed=size)
        elapsed = float("inf")
        for _repeat in range(3):  # best-of-3 to shrug off scheduler noise
            start = time.perf_counter()
            out = service.suggest(batch, k=K)
            elapsed = min(elapsed, time.perf_counter() - start)
        assert out.shape == (size, K)
        rates[size] = size / elapsed
    print("\nserving throughput (suggestions/sec):")
    for size, rate in rates.items():
        print(f"  batch {size:>4}: {rate:>10.0f}/s")
    # Batching must amortize: per-suggestion cost shrinks with batch size.
    assert rates[512] > rates[1]
    benchmark.pedantic(
        lambda: service.suggest(_batches(pool, 512, seed=0), k=K),
        rounds=3,
        iterations=1,
    )


def test_bench_batched_vs_per_patient_loop(served):
    """Acceptance: batched scoring >= 1.5x faster than per-patient suggest."""
    system, service, pool = served
    batch = _batches(pool, 512, seed=7)

    t_batched = float("inf")
    t_loop = float("inf")
    for _repeat in range(3):  # best-of-3: the ratio is noise-sensitive
        start = time.perf_counter()
        batched = service.suggest(batch, k=K)
        t_batched = min(t_batched, time.perf_counter() - start)

        start = time.perf_counter()
        looped = [system.suggest(row[None], k=K)[0] for row in batch]
        t_loop = min(t_loop, time.perf_counter() - start)

    assert batched.tolist() == looped  # same answers, just faster
    speedup = t_loop / t_batched
    print(
        f"\nbatch 512: batched {t_batched * 1e3:.1f} ms "
        f"({512 / t_batched:.0f}/s) vs loop {t_loop * 1e3:.1f} ms "
        f"({512 / t_loop:.0f}/s) -> {speedup:.1f}x"
    )
    assert speedup >= 1.5


def test_bench_cache_hit_rate(served):
    """Skewed traffic: most explanations come from the LRU cache."""
    _system, service, pool = served
    service.clear_cache()
    # Zipf-ish skew: a few frequent patients dominate, like popular
    # suggestion sets in production traffic.
    rng = np.random.default_rng(11)
    hot = pool[:8]
    batch = hot[rng.integers(0, len(hot), size=512)]
    explanations = service.suggest_and_explain(batch, k=K)
    assert len(explanations) == 512
    stats = service.stats()
    print(
        f"\nexplanation cache: {stats.cache_hits} hits / "
        f"{stats.cache_misses} misses (hit rate {stats.cache_hit_rate:.1%})"
    )
    # At most 8 distinct suggestion sets across 512 requests.
    assert stats.cache_misses <= 8
    assert stats.cache_hit_rate > 0.9
