"""Micro-benchmarks of the substrates: data generation, graph algorithms,
autograd training throughput and the counterfactual construction."""

import numpy as np
import pytest

from repro.causal import build_counterfactual_links, suggest_gammas
from repro.data import generate_chronic_cohort, generate_ddi, generate_mimic
from repro.graph import closest_truss_community, steiner_tree, truss_decomposition
from repro.nn import Adam, MLP, Tensor, mse_loss


class TestDataGeneration:
    def test_bench_chronic_cohort_full_size(self, benchmark):
        cohort = benchmark.pedantic(
            lambda: generate_chronic_cohort(num_patients=4157, seed=11),
            rounds=1,
            iterations=1,
        )
        assert cohort.features.shape == (4157, 71)
        assert cohort.medications.shape == (4157, 86)

    def test_bench_ddi_generation(self, benchmark):
        data = benchmark(generate_ddi)
        assert len(data.synergy) == 97
        assert len(data.antagonism) == 243

    def test_bench_mimic_generation(self, benchmark):
        data = benchmark.pedantic(
            lambda: generate_mimic(num_patients=1000, seed=3), rounds=1, iterations=1
        )
        assert data.num_patients == 1000


class TestGraphAlgorithms:
    @pytest.fixture(scope="class")
    def ddi_unsigned(self):
        return generate_ddi(seed=7).graph.to_unsigned()

    def test_bench_truss_decomposition(self, benchmark, ddi_unsigned):
        truss = benchmark(truss_decomposition, ddi_unsigned)
        assert len(truss) == ddi_unsigned.num_edges

    def test_bench_steiner_tree(self, benchmark, ddi_unsigned):
        from repro.graph import connected_components

        comp = max(connected_components(ddi_unsigned), key=len)
        terminals = comp[:4]
        tree = benchmark(steiner_tree, ddi_unsigned, terminals)
        used = {n for e in tree.edges() for n in e}
        assert set(terminals) <= used

    def test_bench_ctc_query(self, benchmark, ddi_unsigned):
        from repro.graph import connected_components

        comp = max(connected_components(ddi_unsigned), key=len)
        query = comp[:3]
        result = benchmark(closest_truss_community, ddi_unsigned, query)
        assert result is not None
        assert set(query) <= set(result.nodes)


class TestAutogradThroughput:
    def test_bench_mlp_training_step(self, benchmark):
        rng = np.random.default_rng(0)
        mlp = MLP([64, 128, 64, 1], rng)
        optimizer = Adam(mlp.parameters(), lr=0.01)
        x = Tensor(rng.normal(size=(512, 64)))
        y = Tensor(rng.normal(size=(512, 1)))

        def step():
            optimizer.zero_grad()
            loss = mse_loss(mlp(x), y)
            loss.backward()
            optimizer.step()
            return loss.item()

        value = benchmark(step)
        assert np.isfinite(value)


class TestCounterfactualConstruction:
    def test_bench_cf_links_cohort_scale(self, benchmark):
        cohort = generate_chronic_cohort(num_patients=400, seed=2)
        x = cohort.features[:400]
        y = cohort.medications[:400]
        z = np.eye(86)
        treatment = (y > 0).astype(int)
        gamma_p, gamma_d = suggest_gammas(x, z, quantile=0.25)

        links = benchmark.pedantic(
            lambda: build_counterfactual_links(x, z, treatment, y, gamma_p, gamma_d),
            rounds=1,
            iterations=1,
        )
        assert 0.0 <= links.match_rate <= 1.0
