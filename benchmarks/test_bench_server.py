"""Benchmark: online gateway micro-batching efficiency (ISSUE 4).

Drives the in-process gateway (batcher + registry + scorer + metrics,
no sockets — the HTTP numbers live in the ``loadgen_http`` section the
CI smoke job merges in) with the closed-loop load generator at
concurrency 32 and measures:

* **micro-batched** — ``max_batch_size=64``, the production config;
* **batch-size-1** — ``max_batch_size=1``, the batching ablation: the
  *same* gateway, the same fixed-shape deterministic scoring
  (``score_block=8``), only the coalescing disabled; and
* **batch-size-1, raw scoring** — ``score_block=0``, the legacy
  variable-shape scorer, reported for transparency: it shows how much
  of the micro-batching win is amortizing the fixed-shape determinism
  cost versus amortizing per-call overhead.

Acceptance (asserted): the micro-batched gateway reaches **>= 3x** the
throughput of batch-size-1 serving on the same artifact, and the scores
the two modes return are **bitwise identical** (fixed-shape blocked
scoring makes every patient's scores independent of batch composition).

The artifact is a paper-sized model (hidden 64 — Sec. V-A3) on the
synthetic chronic cohort.  Results land in ``BENCH_server.json`` at the
repo root.  Set ``BENCH_SERVER_SMOKE=1`` for the reduced CI smoke run
(bitwise equality still asserted, the 3x floor only logged — shared
runners cannot guarantee scheduler-sensitive wall-clock margins).
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import (
    DDIGCNConfig,
    DSSDDI,
    DSSDDIConfig,
    MDGCNConfig,
    ServerConfig,
)
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.server import GatewayApp, ModelRegistry, publish_artifact, read_pool_state
from repro.server.loadgen import (
    HTTPTarget,
    InprocTarget,
    make_feature_pool,
    run_load,
)

SMOKE = os.environ.get("BENCH_SERVER_SMOKE") == "1"
CONCURRENCY = 32
DURATION_S = 0.6 if SMOKE else 1.2
ROUNDS = 1 if SMOKE else 3  # best-of: shrugs off scheduler noise
MAX_BATCH = 64
SCORE_BLOCK = 8
MAX_WAIT_MS = 2.0
K = 3
MIN_SPEEDUP = 3.0
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_server.json")

RESULTS = {
    "config": {
        "concurrency": CONCURRENCY,
        "duration_s": DURATION_S,
        "max_batch_size": MAX_BATCH,
        "score_block": SCORE_BLOCK,
        "max_wait_ms": MAX_WAIT_MS,
        "hidden_dim": 64,
        "smoke": SMOKE,
    }
}


@pytest.fixture(scope="module")
def served_root(tmp_path_factory):
    """Fit a paper-sized (hidden 64) system and publish it."""
    cohort = generate_chronic_cohort(num_patients=200, seed=3)
    x = standardize_features(cohort.features)
    split = split_patients(200, seed=1)
    config = DSSDDIConfig(
        ddi=DDIGCNConfig(epochs=10 if SMOKE else 15, hidden_dim=64),
        md=MDGCNConfig(epochs=25 if SMOKE else 40, hidden_dim=64),
    )
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    root = tmp_path_factory.mktemp("bench_server") / "models"
    publish_artifact(system, root)
    return root


def _gateway(root, max_batch, score_block, trace_sample=0.0):
    registry = ModelRegistry(root, score_block=score_block or None)
    return GatewayApp(
        registry,
        ServerConfig(
            max_batch_size=max_batch,
            max_wait_ms=MAX_WAIT_MS,
            score_block=score_block,
            trace_sample=trace_sample,
            trace_ring=4096,
        ),
    )


def _measure(root, max_batch, score_block, trace_sample=0.0):
    """Best-of-ROUNDS closed-loop measurement of one gateway config."""
    app = _gateway(root, max_batch, score_block, trace_sample)
    pool = make_feature_pool(app.registry.active().service.feature_dim)
    best = None
    try:
        run_load(  # warm-up: BLAS paths, thread pools, reservoirs
            InprocTarget(app), pool, duration_s=0.2, concurrency=CONCURRENCY, k=K
        )
        for _round in range(ROUNDS):
            report = run_load(
                InprocTarget(app),
                pool,
                duration_s=DURATION_S,
                concurrency=CONCURRENCY,
                k=K,
            )
            if best is None or report.throughput_rps > best.throughput_rps:
                best = report
    finally:
        app.close()
    return best


def _record(name, report):
    RESULTS[name] = report.to_dict()
    print(
        f"\n{name}: {report.throughput_rps:.0f} req/s "
        f"(p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms, "
        f"mean batch {report.mean_batch_rows:.1f}, errors {report.errors})"
    )


def _flush_results():
    try:
        with open(RESULTS_PATH, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if not isinstance(existing, dict):
            existing = {}
    except (FileNotFoundError, json.JSONDecodeError):
        existing = {}
    existing.update(RESULTS)
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_bench_micro_batching_speedup(served_root):
    """Acceptance: batched gateway >= 3x batch-size-1 at concurrency 32."""
    batched = _measure(served_root, MAX_BATCH, SCORE_BLOCK)
    batch1 = _measure(served_root, 1, SCORE_BLOCK)
    batch1_raw = _measure(served_root, 1, 0)

    _record("micro_batched", batched)
    _record("batch_size_1", batch1)
    _record("batch_size_1_raw_scoring", batch1_raw)

    assert batched.errors == batch1.errors == batch1_raw.errors == 0
    assert batched.mean_batch_rows > 4  # coalescing actually happened
    assert batch1.mean_batch_rows == 1.0

    speedup = batched.throughput_rps / batch1.throughput_rps
    RESULTS["batching_speedup_vs_batch1"] = round(speedup, 2)
    RESULTS["batched_vs_raw_batch1"] = round(
        batched.throughput_rps / batch1_raw.throughput_rps, 2
    )
    print(
        f"\nmicro-batched vs batch-size-1: {speedup:.2f}x "
        f"(vs raw-scoring batch-1: {RESULTS['batched_vs_raw_batch1']:.2f}x)"
    )

    try:
        if SMOKE:
            # Shared CI runners: log the ratio, only assert sanity.
            assert speedup > 1.0
        else:
            assert speedup >= MIN_SPEEDUP
    finally:
        _flush_results()


def test_bench_tracing_overhead(served_root):
    """Tracing costs nothing off and little on.

    The sampled-off gateway (``trace_sample=0.0``, the default every
    other benchmark runs under) is the baseline; a fully-sampled
    gateway (every request builds a six-span tree into the ring) must
    stay within a modest margin of it.  Best-of-ROUNDS on both sides,
    same artifact, same load shape.
    """
    untraced = _measure(served_root, MAX_BATCH, SCORE_BLOCK, trace_sample=0.0)
    traced = _measure(served_root, MAX_BATCH, SCORE_BLOCK, trace_sample=1.0)

    _record("tracing_off", untraced)
    _record("tracing_full_sample", traced)
    assert untraced.errors == traced.errors == 0

    ratio = traced.throughput_rps / untraced.throughput_rps
    RESULTS["tracing_full_sample_vs_off"] = round(ratio, 3)
    print(f"\nfull-sample tracing vs off: {ratio:.3f}x throughput")
    try:
        if SMOKE:
            # Shared CI runners: log the ratio, only assert sanity.
            assert ratio > 0.5
        else:
            # Span bookkeeping per request must stay in the noise floor
            # relative to the scoring work it wraps.
            assert ratio > 0.8, f"full-sample tracing cost {1 - ratio:.1%}"
    finally:
        _flush_results()


#: Row count of the bitwise-equality probe set.
PROBE_ROWS = 24


def test_bench_bitwise_identical_scores(served_root):
    """Batched and batch-size-1 gateways return bitwise-equal scores."""
    import threading

    pool = make_feature_pool(71, pool_size=PROBE_ROWS, seed=99)

    def collect(app):
        out = [None] * PROBE_ROWS
        barrier = threading.Barrier(8 + 1)

        def worker(w):
            barrier.wait()
            for i in range(w, PROBE_ROWS, 8):
                status, body = app.suggest(
                    {"features": [pool[i].tolist()], "k": K, "return_scores": True}
                )
                assert status == 200
                out[i] = (body["suggestions"][0], body["scores"][0])

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join(timeout=60.0)
        return out

    batched_app = _gateway(served_root, MAX_BATCH, SCORE_BLOCK)
    try:
        batched = collect(batched_app)
    finally:
        batched_app.close()
    batch1_app = _gateway(served_root, 1, SCORE_BLOCK)
    try:
        sequential = collect(batch1_app)
    finally:
        batch1_app.close()

    for (batched_topk, batched_scores), (seq_topk, seq_scores) in zip(
        batched, sequential
    ):
        assert batched_topk == seq_topk
        assert np.array_equal(np.asarray(batched_scores), np.asarray(seq_scores))
    RESULTS["bitwise_identical_scores"] = True
    _flush_results()


# ---------------------------------------------------------------------------
# Pre-fork worker scaling (ISSUE 6)
# ---------------------------------------------------------------------------

CORES = len(os.sched_getaffinity(0))
WORKER_COUNTS = (1, 2, 4)
POOL_DURATION_S = 0.5 if SMOKE else 1.0
POOL_ROUNDS = 1 if SMOKE else 2
MIN_POOL_SPEEDUP = 2.0  # 4 workers vs 1, asserted only with >= 4 cores

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


class _Pool:
    """A `repro-serve --workers N` subprocess plus its discovery state."""

    def __init__(self, root, workers, stats_dir):
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.stats_dir = str(stats_dir)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.server", str(root),
                "--workers", str(workers),
                "--port", "0",
                "--stats-dir", self.stats_dir,
                "--stats-interval", "0.5",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.host = None
        self.port = None

    def wait_ready(self, workers, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"pool exited rc={self.proc.returncode}:\n"
                    f"{self.proc.stdout.read()}"
                )
            state = read_pool_state(self.stats_dir)
            if state and len(state.get("workers", {})) >= workers:
                self.host, self.port = state["host"], state["port"]
                try:
                    status, _ = self.http("GET", "/healthz")
                except OSError:
                    status = -1
                if status == 200:
                    return self
            time.sleep(0.1)
        raise RuntimeError(f"pool not ready within {timeout}s")

    def http(self, method, path, body=None, timeout=30.0):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def terminate(self, timeout=60.0):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10.0)


def _measure_pool(root, workers, stats_dir):
    """Best-of-rounds closed-loop HTTP load against a live worker pool."""
    pool = _Pool(root, workers, stats_dir)
    try:
        pool.wait_ready(workers)
        target = HTTPTarget(f"http://{pool.host}:{pool.port}")
        feature_pool = make_feature_pool(71)
        run_load(  # warm-up: connections, BLAS, per-worker batchers
            target, feature_pool, duration_s=0.2, concurrency=CONCURRENCY, k=K
        )
        best = None
        for _round in range(POOL_ROUNDS):
            report = run_load(
                target,
                feature_pool,
                duration_s=POOL_DURATION_S,
                concurrency=CONCURRENCY,
                k=K,
            )
            if best is None or report.throughput_rps > best.throughput_rps:
                best = report
        # Bitwise probe: the same patient scored through this pool.
        status, probe = pool.http(
            "POST", "/v1/suggest",
            body={
                "features": [feature_pool[0].tolist()],
                "k": K,
                "return_scores": True,
            },
        )
        assert status == 200
        return best, probe
    finally:
        pool.terminate()


def test_bench_workers_scaling(served_root, tmp_path_factory):
    """Throughput across 1/2/4 pre-fork workers; bitwise-equal scores.

    The >= 2x (4 workers vs 1) floor is only asserted when the host
    actually has >= 4 cores — on a 1-core box the pool cannot scale and
    the curve is recorded for transparency instead.
    """
    section = {
        "cores": CORES,
        "concurrency": CONCURRENCY,
        "duration_s": POOL_DURATION_S,
        "smoke": SMOKE,
        "mmap_artifacts": True,
        "workers": {},
    }
    probes = {}
    throughput = {}
    for workers in WORKER_COUNTS:
        stats_dir = tmp_path_factory.mktemp(f"pool-stats-{workers}w")
        report, probe = _measure_pool(served_root, workers, stats_dir)
        assert report.errors == 0, (workers, report)
        throughput[workers] = report.throughput_rps
        probes[workers] = probe
        section["workers"][str(workers)] = report.to_dict()
        print(
            f"\nworkers={workers}: {report.throughput_rps:.0f} req/s "
            f"(p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms)"
        )

    # Scores are bitwise-identical whatever the worker count: one
    # artifact, mmap'd read-only into every worker of every pool.
    reference = probes[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        assert probes[workers]["suggestions"] == reference["suggestions"]
        assert probes[workers]["scores"] == reference["scores"]
        assert probes[workers]["version"] == reference["version"]
    section["bitwise_identical_across_worker_counts"] = True

    speedup = throughput[4] / throughput[1]
    section["speedup_4_vs_1"] = round(speedup, 2)
    print(f"\n4-worker vs 1-worker speedup: {speedup:.2f}x (cores={CORES})")

    RESULTS["workers_scaling"] = section
    try:
        if CORES >= 4 and not SMOKE:
            assert speedup >= MIN_POOL_SPEEDUP
    finally:
        _flush_results()
